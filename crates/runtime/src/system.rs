//! The actor system: shared node state, worker pool, and the public API.
//!
//! One [`ActorSystem`] is a *node* in the paper's architecture (§7.2): it
//! owns the local Coordinator state (the [`ShardedRegistry`] — one lock
//! per actorSpace, see `actorspace_core::shard`), the actor table, and a
//! pool of worker threads draining mailboxes.

use std::collections::HashMap;
use std::sync::atomic::{AtomicBool, AtomicUsize, Ordering};
use std::sync::Arc;
use std::time::{Duration, Instant};

use actorspace_lockcheck::{Condvar, LockClass, Mutex, RwLock};
use crossbeam::deque::Injector;

use actorspace_atoms::Path;
use actorspace_capability::{CapMinter, Capability};
use actorspace_core::{
    ActorId, Disposition, GcReport, ManagerPolicy, MemberId, Pattern, Result, Route,
    ShardedRegistry, SpaceId,
};
use actorspace_obs::{names, Counter, DeadLetter, DeadLetterReason, Obs, Stage, TraceId};

use crate::actor::{ActorCell, Behavior};
use crate::message::{Envelope, Message, Payload};
use crate::scheduler;
use crate::transport::Transport;
use crate::value::Value;

/// Node configuration.
#[derive(Clone)]
pub struct Config {
    /// Worker threads. Defaults to `min(available_parallelism, 4)`.
    pub workers: usize,
    /// Messages processed per actor per scheduling slot.
    pub batch: usize,
    /// Policy template for new actorSpaces (and the root space).
    pub policy: ManagerPolicy,
    /// First raw id this node allocates — cluster nodes use disjoint
    /// ranges (`node << 48`).
    pub id_base: u64,
    /// The observer receiving this node's metrics, traces, and dead
    /// letters. `None` creates a private default
    /// ([`ObsConfig::default`](actorspace_obs::ObsConfig::default)); the
    /// cluster layer shares one observer across all nodes so counters
    /// survive restarts and timestamps share an epoch.
    pub obs: Option<Arc<Obs>>,
    /// Node label stamped on this system's telemetry (0 standalone).
    pub node: u16,
}

impl Default for Config {
    fn default() -> Self {
        let workers = std::thread::available_parallelism()
            .map(|n| n.get())
            .unwrap_or(2)
            .min(4);
        Config {
            workers,
            batch: 16,
            policy: ManagerPolicy::default(),
            id_base: 1,
            obs: None,
            node: 0,
        }
    }
}

/// Counters exposed for tests and benchmarks.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Stats {
    /// Messages enqueued but not yet fully processed.
    pub pending: usize,
    /// Messages whose destination did not exist (locally or via uplink).
    pub dead_letters: usize,
    /// Live local actors.
    pub actors: usize,
    /// Live spaces.
    pub spaces: usize,
    /// Remote nodes this node has declared failed (failure detector).
    pub suspicions: usize,
    /// Messages re-routed to a surviving replica after a node failure.
    pub failovers: usize,
    /// Node re-registrations (restarts) observed through the directory.
    pub re_registrations: usize,
}

/// State shared between the API, workers, and contexts.
pub(crate) struct Shared {
    pub actors: RwLock<HashMap<ActorId, Arc<ActorCell>>>,
    pub injector: Injector<Arc<ActorCell>>,
    /// The sharded coordinator. Operations take `&self` and lock only the
    /// shards their scope reaches; no outer mutex. The registry may take
    /// the `actors` read lock through its sinks (delivery), so no path may
    /// hold the `actors` lock while entering the registry.
    pub registry: ShardedRegistry<Message>,
    pub minter: CapMinter,
    /// Enqueued-but-unprocessed message count; zero ⇒ quiescent.
    pub pending: AtomicUsize,
    pub idle_lock: Mutex<()>,
    pub idle_cv: Condvar,
    /// Count of parked workers, under its own lock (wakeup protocol).
    pub sleep_lock: Mutex<usize>,
    pub sleep_cv: Condvar,
    pub shutdown: AtomicBool,
    /// The shared observer and this node's label on it.
    pub obs: Arc<Obs>,
    pub node: u16,
    /// Pre-resolved counter handles (`runtime.*` metrics, labeled by
    /// node). Resolved from `obs` by `(name, node)`, so a restarted
    /// incarnation picks up the *same* atoms — totals are cumulative.
    pub dead_letters: Arc<Counter>,
    /// Failure-detector events, counted on the node that observed them.
    pub suspicions: Arc<Counter>,
    pub failovers: Arc<Counter>,
    pub re_registrations: Arc<Counter>,
    pub deliveries: Arc<Counter>,
    /// Delivery fallback for non-local actors (§7.2 transport objects).
    pub uplink: RwLock<Option<Arc<dyn Transport>>>,
    /// Reroutes state-changing primitives through an external coordinator
    /// (the cluster bus). `None` on a standalone node.
    pub hook: RwLock<Option<Arc<dyn crate::hook::CoordinatorHook>>>,
    pub batch: usize,
}

impl Shared {
    /// Delivers an envelope: local mailbox, else uplink, else dead letter.
    /// Returns true if the message found a home.
    pub fn deliver(&self, env: Envelope) -> bool {
        let cell = self.actors.read().get(&env.to).cloned();
        let port = env.port();
        let Envelope { to, payload, route } = env;
        match cell {
            Some(cell) => {
                if let Some(r) = route.as_ref() {
                    self.obs
                        .tracer
                        .record(r.trace, self.node, Stage::Routed { node: self.node });
                }
                self.pending.fetch_add(1, Ordering::AcqRel);
                if cell.mailbox.push(port, payload, route) {
                    self.injector.push(cell);
                    self.notify_worker();
                }
                true
            }
            None => {
                let trace = route.as_ref().map(|r| r.trace).unwrap_or(TraceId::NONE);
                if let Payload::User(msg) = payload {
                    if let Some(up) = self.uplink.read().clone() {
                        if up.deliver_routed(to, msg, route.as_ref()) {
                            return true;
                        }
                    }
                }
                self.note_dead_letter(DeadLetterReason::NoRecipient, Some(to), trace);
                false
            }
        }
    }

    /// Records a dead letter: counter, last-N ring, and terminal trace
    /// stage, all on this node's label.
    pub fn note_dead_letter(&self, reason: DeadLetterReason, to: Option<ActorId>, trace: TraceId) {
        self.dead_letters.inc();
        self.obs.dead_letters.record(DeadLetter {
            at_nanos: self.obs.now_nanos(),
            node: self.node,
            to: to.map(|a| a.0),
            trace,
            reason,
        });
        self.obs
            .tracer
            .record(trace, self.node, Stage::DeadLettered);
    }

    pub fn notify_worker(&self) {
        let _g = self.sleep_lock.lock();
        self.sleep_cv.notify_one();
    }

    /// Decrements the pending counter, waking idle waiters at zero.
    pub fn dec_pending(&self) {
        if self.pending.fetch_sub(1, Ordering::AcqRel) == 1 {
            let _g = self.idle_lock.lock();
            self.idle_cv.notify_all();
        }
    }

    /// Runs `f` with the registry and a sink that enqueues deliveries.
    pub fn with_registry<R>(
        &self,
        f: impl FnOnce(&ShardedRegistry<Message>, &mut dyn FnMut(ActorId, Message, Option<&Route>)) -> R,
    ) -> R {
        let mut sink = |to: ActorId, msg: Message, route: Option<&Route>| {
            self.deliver(Envelope::user_routed(to, msg, route.cloned()));
        };
        f(&self.registry, &mut sink)
    }

    /// Registers a new actor and schedules its start signal.
    pub fn spawn_cell(
        &self,
        host: SpaceId,
        cap: Option<&Capability>,
        behavior: Box<dyn Behavior>,
        rooted: bool,
    ) -> Result<ActorId> {
        let id = self.registry.create_actor(host, cap)?;
        if rooted {
            self.registry.add_root(id);
        }
        let cell = Arc::new(ActorCell::new(id, behavior));
        self.actors.write().insert(id, cell);
        self.deliver(Envelope::start(id));
        Ok(id)
    }

    /// Removes an actor: table entry, registry record, memberships.
    pub fn stop_actor(&self, id: ActorId) {
        self.actors.write().remove(&id);
        self.registry.remove_actor(id);
    }

    /// Installs a behavior cell without creating a registry record or
    /// scheduling the start signal — the cluster layer's creation path
    /// (record and activation arrive via the ordered bus).
    pub fn install_cell(&self, id: ActorId, behavior: Box<dyn Behavior>) {
        let cell = Arc::new(ActorCell::new(id, behavior));
        self.actors.write().insert(id, cell);
    }

    /// Schedules the start signal for an installed cell.
    pub fn send_start(&self, id: ActorId) {
        self.deliver(Envelope::start(id));
    }

    // -- hook-aware primitive dispatch -----------------------------------

    pub fn op_make_visible(
        &self,
        member: MemberId,
        attrs: Vec<Path>,
        space: SpaceId,
        cap: Option<&Capability>,
    ) -> Result<()> {
        if let Some(h) = self.hook.read().clone() {
            return h.make_visible(member, attrs, space, cap.copied());
        }
        self.with_registry(|reg, sink| reg.make_visible(member, attrs, space, cap, sink))
    }

    pub fn op_make_invisible(
        &self,
        member: MemberId,
        space: SpaceId,
        cap: Option<&Capability>,
    ) -> Result<()> {
        if let Some(h) = self.hook.read().clone() {
            return h.make_invisible(member, space, cap.copied());
        }
        self.registry.make_invisible(member, space, cap)
    }

    pub fn op_change_attributes(
        &self,
        member: MemberId,
        attrs: Vec<Path>,
        space: SpaceId,
        cap: Option<&Capability>,
    ) -> Result<()> {
        if let Some(h) = self.hook.read().clone() {
            return h.change_attributes(member, attrs, space, cap.copied());
        }
        self.with_registry(|reg, sink| reg.change_attributes(member, attrs, space, cap, sink))
    }

    pub fn op_create_space(&self, cap: Option<&Capability>) -> SpaceId {
        if let Some(h) = self.hook.read().clone() {
            return h.create_space(cap.copied());
        }
        self.registry.create_space(cap)
    }

    pub fn op_destroy_space(&self, space: SpaceId, cap: Option<&Capability>) -> Result<()> {
        if let Some(h) = self.hook.read().clone() {
            return h.destroy_space(space, cap.copied());
        }
        self.registry.destroy_space(space, cap)
    }

    pub fn op_create_actor(
        &self,
        host: SpaceId,
        cap: Option<&Capability>,
        behavior: Box<dyn Behavior>,
    ) -> Result<ActorId> {
        if let Some(h) = self.hook.read().clone() {
            return h.create_actor(host, cap.copied(), behavior);
        }
        self.spawn_cell(host, cap, behavior, false)
    }
}

/// A single-node ActorSpace runtime.
pub struct ActorSystem {
    shared: Arc<Shared>,
    workers: Mutex<Vec<std::thread::JoinHandle<()>>>,
}

impl ActorSystem {
    /// Boots a node: registry with its root space, plus `config.workers`
    /// scheduler threads.
    pub fn new(config: Config) -> ActorSystem {
        let obs = config
            .obs
            .unwrap_or_else(|| Obs::shared(actorspace_obs::ObsConfig::default()));
        let node = config.node;
        let mut registry = ShardedRegistry::with_id_base(config.policy.clone(), config.id_base);
        registry.set_obs(obs.clone(), node);
        let shared = Arc::new(Shared {
            actors: RwLock::new(LockClass::Actors, HashMap::new()),
            injector: Injector::new(),
            registry,
            minter: CapMinter::new(),
            pending: AtomicUsize::new(0),
            idle_lock: Mutex::new(LockClass::Scheduler, ()),
            idle_cv: Condvar::new(),
            sleep_lock: Mutex::new(LockClass::Scheduler, 0),
            sleep_cv: Condvar::new(),
            shutdown: AtomicBool::new(false),
            dead_letters: obs.metrics.counter(names::RT_DEAD_LETTERS, node),
            suspicions: obs.metrics.counter(names::RT_SUSPICIONS, node),
            failovers: obs.metrics.counter(names::RT_FAILOVERS, node),
            re_registrations: obs.metrics.counter(names::RT_REREGISTRATIONS, node),
            deliveries: obs.metrics.counter(names::RT_DELIVERIES, node),
            obs,
            node,
            uplink: RwLock::new(LockClass::Other("runtime.uplink"), None),
            hook: RwLock::new(LockClass::Other("runtime.hook"), None),
            batch: config.batch.max(1),
        });
        let workers = (0..config.workers.max(1))
            .map(|i| {
                let s = shared.clone();
                std::thread::Builder::new()
                    .name(format!("actorspace-worker-{i}"))
                    .spawn(move || scheduler::run_worker(s))
                    .expect("spawn worker")
            })
            .collect();
        ActorSystem {
            shared,
            workers: Mutex::new(LockClass::Other("runtime.workers"), workers),
        }
    }

    // ------------------------------------------------------------------
    // Spawning
    // ------------------------------------------------------------------

    /// Spawns an actor hosted in the root space, returning a handle that
    /// keeps it alive (GC root) until dropped.
    pub fn spawn(&self, behavior: impl Behavior) -> ActorHandle {
        self.spawn_in(actorspace_core::ROOT_SPACE, behavior, None)
            .expect("root space always exists")
    }

    /// Spawns an actor hosted in `space`, optionally binding a capability
    /// guard to it.
    pub fn spawn_in(
        &self,
        space: SpaceId,
        behavior: impl Behavior,
        cap: Option<&Capability>,
    ) -> Result<ActorHandle> {
        let id = self
            .shared
            .op_create_actor(space, cap, Box::new(behavior))?;
        self.shared.registry.add_root(id);
        Ok(ActorHandle {
            id,
            shared: self.shared.clone(),
        })
    }

    /// Creates a channel-backed receiver actor: messages sent to the
    /// returned [`ActorId`] appear on the returned `Receiver`. The inbox is
    /// permanently rooted.
    pub fn inbox(&self) -> (ActorId, std::sync::mpsc::Receiver<Message>) {
        let (tx, rx) = std::sync::mpsc::channel::<Message>();
        let behavior = crate::actor::from_fn(move |_ctx, msg| {
            let _ = tx.send(msg);
        });
        let id = self
            .shared
            .spawn_cell(actorspace_core::ROOT_SPACE, None, Box::new(behavior), true)
            .expect("root space always exists");
        (id, rx)
    }

    // ------------------------------------------------------------------
    // ActorSpace primitives (system-level: no sending actor)
    // ------------------------------------------------------------------

    /// `create_actorSpace(capability)` (§5.2).
    pub fn create_space(&self, cap: Option<&Capability>) -> Result<SpaceId> {
        Ok(self.shared.op_create_space(cap))
    }

    /// Destroys a space (§7.1). Requires `Rights::MANAGE` when guarded.
    pub fn destroy_space(&self, space: SpaceId, cap: Option<&Capability>) -> Result<()> {
        self.shared.op_destroy_space(space, cap)
    }

    /// `new_capability()` (§5.4).
    pub fn new_capability(&self) -> Capability {
        self.minter().new_capability()
    }

    /// The capability mint.
    pub fn minter(&self) -> &CapMinter {
        &self.shared.minter
    }

    /// `make_visible(member, attrs @ space, capability)` (§5.4). May wake
    /// suspended messages, which are delivered asynchronously.
    pub fn make_visible(
        &self,
        member: impl Into<MemberId>,
        attr: &Path,
        space: SpaceId,
        cap: Option<&Capability>,
    ) -> Result<()> {
        self.make_visible_all(member, vec![attr.clone()], space, cap)
    }

    /// [`ActorSystem::make_visible`] with several attributes at once.
    pub fn make_visible_all(
        &self,
        member: impl Into<MemberId>,
        attrs: Vec<Path>,
        space: SpaceId,
        cap: Option<&Capability>,
    ) -> Result<()> {
        let member = member.into();
        self.shared.op_make_visible(member, attrs, space, cap)
    }

    /// `make_invisible(member, space, capability)` (§5.4).
    pub fn make_invisible(
        &self,
        member: impl Into<MemberId>,
        space: SpaceId,
        cap: Option<&Capability>,
    ) -> Result<()> {
        self.shared.op_make_invisible(member.into(), space, cap)
    }

    /// `change_attributes(member, attrs @ space, capability)` (§5.4).
    pub fn change_attributes(
        &self,
        member: impl Into<MemberId>,
        attrs: Vec<Path>,
        space: SpaceId,
        cap: Option<&Capability>,
    ) -> Result<()> {
        self.shared
            .op_change_attributes(member.into(), attrs, space, cap)
    }

    /// `send(pattern@space, message)` from outside the system (no sender
    /// address).
    pub fn send_pattern(
        &self,
        pattern: &Pattern,
        space: SpaceId,
        body: Value,
        from: Option<ActorId>,
    ) -> Result<Disposition> {
        let msg = Message {
            from,
            body,
            port: crate::message::Port::Invocation,
        };
        self.shared
            .with_registry(|reg, sink| reg.send(pattern, space, msg, sink))
    }

    /// `broadcast(pattern@space, message)` from outside the system.
    pub fn broadcast(
        &self,
        pattern: &Pattern,
        space: SpaceId,
        body: Value,
        from: Option<ActorId>,
    ) -> Result<Disposition> {
        let msg = Message {
            from,
            body,
            port: crate::message::Port::Invocation,
        };
        self.shared
            .with_registry(|reg, sink| reg.broadcast(pattern, space, msg, sink))
    }

    /// Point-to-point send by mail address — the Actor special case.
    /// Returns false if the address is unknown here and via the uplink.
    pub fn send_to(&self, to: ActorId, body: Value) -> bool {
        self.shared.deliver(Envelope::user(to, Message::new(body)))
    }

    /// Installs a new behavior via the actor's Behavior port (§7.2).
    pub fn send_behavior(&self, to: ActorId, behavior: impl Behavior) -> bool {
        self.shared
            .deliver(Envelope::become_(to, Box::new(behavior)))
    }

    /// Resolves a pattern without sending (inspection).
    pub fn resolve(&self, pattern: &Pattern, space: SpaceId) -> Result<Vec<ActorId>> {
        self.shared.registry.resolve(pattern, space)
    }

    /// Resolves a pattern to matching spaces (§5.3: pattern-based
    /// actorSpace specification).
    pub fn resolve_spaces(&self, pattern: &Pattern, space: SpaceId) -> Result<Vec<SpaceId>> {
        self.shared.registry.resolve_spaces(pattern, space)
    }

    /// Replaces a space's policy table. Requires `Rights::MANAGE`.
    pub fn set_space_policy(
        &self,
        space: SpaceId,
        policy: ManagerPolicy,
        cap: Option<&Capability>,
    ) -> Result<()> {
        self.shared.registry.set_space_policy(space, policy, cap)
    }

    /// Installs a custom manager on a space. Requires `Rights::MANAGE`.
    pub fn set_space_manager(
        &self,
        space: SpaceId,
        manager: Box<dyn actorspace_core::Manager>,
        cap: Option<&Capability>,
    ) -> Result<()> {
        self.shared.registry.set_space_manager(space, manager, cap)
    }

    /// Cancels persistent broadcasts on a space.
    pub fn cancel_persistent(&self, space: SpaceId, cap: Option<&Capability>) -> Result<usize> {
        self.shared.registry.cancel_persistent(space, cap)
    }

    /// Installs (or clears) a custom matching rule on a space (§5
    /// matching-rule customization). Requires `Rights::MANAGE`.
    pub fn set_match_filter(
        &self,
        space: SpaceId,
        filter: Option<actorspace_core::MatchFilter>,
        cap: Option<&Capability>,
    ) -> Result<()> {
        self.shared.registry.set_match_filter(space, filter, cap)
    }

    /// Reports an actor's load for least-loaded arbitration in `space`.
    pub fn report_load(&self, space: SpaceId, actor: ActorId, load: u64) -> Result<()> {
        self.shared.registry.report_load(space, actor, load)
    }

    /// Observability snapshot of one space.
    pub fn space_info(&self, space: SpaceId) -> Result<actorspace_core::SpaceInfo> {
        self.shared.registry.space_info(space)
    }

    /// Ids of all live spaces (including the root), ascending.
    pub fn space_ids(&self) -> Vec<SpaceId> {
        self.shared.registry.space_ids()
    }

    /// Runs a garbage collection pass (§5.5). The runtime cannot see inside
    /// behaviors, so callers supply the acquaintance map (or none, to
    /// collect purely by visibility/handle reachability). Stopped actors'
    /// cells are removed along with their registry records.
    pub fn collect_garbage(&self, acquaintances: &dyn Fn(ActorId) -> Vec<MemberId>) -> GcReport {
        let report = self.shared.registry.collect_garbage(acquaintances);
        let mut actors = self.shared.actors.write();
        for a in &report.collected_actors {
            actors.remove(a);
        }
        report
    }

    // ------------------------------------------------------------------
    // Lifecycle
    // ------------------------------------------------------------------

    /// Blocks until no messages are queued or being processed, or the
    /// timeout elapses. Returns true on quiescence.
    pub fn await_idle(&self, timeout: Duration) -> bool {
        let deadline = Instant::now() + timeout;
        let mut g = self.shared.idle_lock.lock();
        while self.shared.pending.load(Ordering::Acquire) > 0 {
            let now = Instant::now();
            if now >= deadline {
                return false;
            }
            self.shared.idle_cv.wait_for(&mut g, deadline - now);
        }
        true
    }

    /// Counters snapshot. Counter values come from the node's observer, so
    /// under a shared cluster observer they are cumulative across restarts
    /// of this node (the registry-derived `actors`/`spaces` and the queue
    /// gauge `pending` remain per-incarnation by nature).
    pub fn stats(&self) -> Stats {
        Stats {
            pending: self.shared.pending.load(Ordering::Acquire),
            dead_letters: self.shared.dead_letters.get() as usize,
            actors: self.shared.registry.actor_count(),
            spaces: self.shared.registry.space_count(),
            suspicions: self.shared.suspicions.get() as usize,
            failovers: self.shared.failovers.get() as usize,
            re_registrations: self.shared.re_registrations.get() as usize,
        }
    }

    /// The observer receiving this system's metrics, traces, and dead
    /// letters.
    pub fn obs(&self) -> &Arc<Obs> {
        &self.shared.obs
    }

    /// The node label stamped on this system's telemetry.
    pub fn node_label(&self) -> u16 {
        self.shared.node
    }

    /// Records that this node's failure detector declared a peer failed.
    pub fn note_suspicion(&self) {
        self.shared.suspicions.inc();
    }

    /// Records one message re-routed to a survivor after a node failure.
    pub fn note_failover(&self) {
        self.shared.failovers.inc();
    }

    /// Records a node re-registration (restart) observed via the directory.
    pub fn note_reregistration(&self) {
        self.shared.re_registrations.inc();
    }

    /// Records a message that could not be failed over (no route).
    pub fn note_dead_letter(&self) {
        self.shared
            .note_dead_letter(DeadLetterReason::Undeliverable, None, TraceId::NONE);
    }

    /// Records a dead letter with its reason, destination, and trace —
    /// the cluster layer's crash/harvest paths use this so the drop shows
    /// up in the last-N ring and terminates the message's trace.
    pub fn note_dead_letter_traced(
        &self,
        reason: DeadLetterReason,
        to: Option<ActorId>,
        trace: TraceId,
    ) {
        self.shared.note_dead_letter(reason, to, trace);
    }

    /// Installs the non-local delivery fallback (§7.2 transport selection).
    pub fn set_uplink(&self, transport: Arc<dyn Transport>) {
        *self.shared.uplink.write() = Some(transport);
    }

    /// Installs the coordinator hook rerouting state-changing primitives
    /// through the cluster bus (§7.3).
    pub fn set_coordinator_hook(&self, hook: Arc<dyn crate::hook::CoordinatorHook>) {
        *self.shared.hook.write() = Some(hook);
    }

    /// Installs a behavior cell without registry record or start signal —
    /// the cluster layer's creation path (see
    /// [`hook::CoordinatorHook::create_actor`](crate::hook::CoordinatorHook::create_actor)).
    pub fn install_cell(&self, id: ActorId, behavior: impl Behavior) {
        self.shared.install_cell(id, Box::new(behavior));
    }

    /// [`ActorSystem::install_cell`] for an already-boxed behavior.
    pub fn install_cell_boxed(&self, id: ActorId, behavior: crate::actor::BoxBehavior) {
        self.shared.install_cell(id, behavior);
    }

    /// Schedules the start signal for a previously installed cell.
    pub fn send_start(&self, id: ActorId) {
        self.shared.send_start(id);
    }

    /// Delivers a message arriving from another node to a local actor.
    pub fn deliver_remote(&self, to: ActorId, msg: Message) -> bool {
        self.shared.deliver(Envelope::user(to, msg))
    }

    /// [`ActorSystem::deliver_remote`] preserving the originating pattern
    /// resolution, so the message stays re-routable if this node dies with
    /// it still queued.
    pub fn deliver_remote_routed(&self, to: ActorId, msg: Message, route: Option<Route>) -> bool {
        self.shared.deliver(Envelope::user_routed(to, msg, route))
    }

    /// Re-resolves a previously routed message against the current registry
    /// state — the failover path after its original recipient died. The
    /// space's unmatched policy applies as for a fresh `send`, but the
    /// message's existing lifecycle trace is continued rather than a new
    /// one being started.
    pub fn resend_routed(&self, route: &Route, msg: Message) -> Result<Disposition> {
        self.shared
            .with_registry(|reg, sink| reg.resend(route, msg, sink))
    }

    /// Whether this node currently hosts a behavior cell for `id`.
    pub fn has_actor(&self, id: ActorId) -> bool {
        self.shared.actors.read().contains_key(&id)
    }

    /// Empties every local mailbox, returning the user messages that were
    /// accepted but never processed, with the pattern resolution that
    /// produced each (when there was one). Called on a crashed node after
    /// its workers have stopped; the cluster re-routes the routed ones and
    /// dead-letters the rest. Non-user payloads (starts, behaviors) are
    /// dropped — they die with the actor.
    pub fn drain_unprocessed(&self) -> Vec<(Option<Route>, Message)> {
        let cells: Vec<Arc<ActorCell>> = self.shared.actors.read().values().cloned().collect();
        let mut out = Vec::new();
        for cell in cells {
            for (payload, route) in cell.mailbox.drain() {
                self.shared.dec_pending();
                if let Payload::User(msg) = payload {
                    out.push((route, msg));
                }
            }
        }
        out
    }

    /// Direct registry access for the cluster layer (replica application).
    /// The closure receives the registry and a delivery sink.
    pub fn with_registry<R>(
        &self,
        f: impl FnOnce(&ShardedRegistry<Message>, &mut dyn FnMut(ActorId, Message, Option<&Route>)) -> R,
    ) -> R {
        self.shared.with_registry(f)
    }

    /// Spawns an actor without handing out a rooted handle — the cluster
    /// layer uses this for actors whose creation event came over the bus.
    pub fn spawn_unrooted(
        &self,
        space: SpaceId,
        behavior: impl Behavior,
        cap: Option<&Capability>,
    ) -> Result<ActorId> {
        self.shared
            .spawn_cell(space, cap, Box::new(behavior), false)
    }

    /// Spawns a background thread that runs `f` every `every` until the
    /// system shuts down — the node-lifecycle hook used by periodic
    /// services (e.g. the cluster's metrics-snapshot publisher). The
    /// thread joins in [`ActorSystem::shutdown`] with the workers, so
    /// `f` must not block on this system's own teardown; missed ticks
    /// are skipped, not replayed.
    pub fn spawn_periodic(&self, name: &str, every: Duration, f: impl Fn() + Send + 'static) {
        let shared = self.shared.clone();
        let handle = std::thread::Builder::new()
            .name(format!("{name}@{}", self.shared.node))
            .spawn(move || {
                let mut next = Instant::now() + every;
                while !shared.shutdown.load(Ordering::Acquire) {
                    let now = Instant::now();
                    if now >= next {
                        f();
                        next = now + every;
                        continue;
                    }
                    // Chunked sleep so shutdown never waits a full period.
                    std::thread::sleep((next - now).min(Duration::from_millis(5)));
                }
            })
            .expect("spawn periodic thread");
        self.workers.lock().push(handle);
    }

    /// Stops all workers. Queued messages may be dropped. Idempotent.
    pub fn shutdown(&self) {
        self.shared.shutdown.store(true, Ordering::Release);
        {
            let _g = self.shared.sleep_lock.lock();
            self.shared.sleep_cv.notify_all();
        }
        let mut workers = self.workers.lock();
        for h in workers.drain(..) {
            let _ = h.join();
        }
    }
}

impl Drop for ActorSystem {
    fn drop(&mut self) {
        self.shutdown();
    }
}

/// An external handle to a spawned actor. The actor is a GC root while the
/// handle lives; dropping the handle lets [`ActorSystem::collect_garbage`]
/// reclaim the actor once nothing else reaches it.
pub struct ActorHandle {
    id: ActorId,
    shared: Arc<Shared>,
}

impl ActorHandle {
    /// The actor's mail address.
    pub fn id(&self) -> ActorId {
        self.id
    }

    /// Point-to-point send to this actor.
    pub fn send(&self, body: Value) -> bool {
        self.shared
            .deliver(Envelope::user(self.id, Message::new(body)))
    }

    /// Keeps the actor rooted forever and discards the handle.
    pub fn leak(self) -> ActorId {
        let id = self.id;
        std::mem::forget(self);
        id
    }
}

impl std::fmt::Debug for ActorHandle {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "ActorHandle({})", self.id)
    }
}

impl Drop for ActorHandle {
    fn drop(&mut self) {
        self.shared.registry.remove_root(self.id);
    }
}
