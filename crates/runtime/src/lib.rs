//! The single-node ActorSpace runtime — the paper's §7.2 design.
//!
//! Each node associates "all the executing actors on a node with a single
//! local coordinator". Here:
//!
//! * the **Coordinator** state is an [`actorspace_core::Registry`] behind a
//!   lock, carrying out every ActorSpace primitive;
//! * the **ActorInterface** is [`Ctx`], the handle behaviors use to invoke
//!   primitives (create / send / become / make_visible / …);
//! * the **three message ports** of the prototype (Behavior, Invocation,
//!   RPC) are per-actor FIFO queues in [`mailbox`], with Behavior-port
//!   traffic (next-behavior installation) processed first;
//! * **transport objects** are the [`transport::Transport`] trait — local
//!   delivery is a mailbox push, and an installed uplink carries messages
//!   for actors this node does not host (used by the cluster layer).
//!
//! Scheduling is a fixed pool of workers over a shared injector queue;
//! every actor processes one message at a time, so behavior state needs no
//! internal synchronization.
//!
//! ```
//! use actorspace_runtime::{ActorSystem, Config, Value, from_fn};
//! use actorspace_atoms::path;
//! use actorspace_pattern::pattern;
//! use std::time::Duration;
//!
//! let system = ActorSystem::new(Config::default());
//! let space = system.create_space(None).unwrap();
//! let (inbox, rx) = system.inbox();
//!
//! let doubler = system.spawn(from_fn(move |ctx, msg| {
//!     let n = msg.body.as_int().unwrap_or(0);
//!     ctx.send_addr(inbox, Value::int(n * 2));
//! }));
//! system.make_visible(doubler.id(), &path("math/double"), space, None).unwrap();
//!
//! system.send_pattern(&pattern("math/*"), space, Value::int(21), None).unwrap();
//! let reply = rx.recv_timeout(Duration::from_secs(5)).unwrap();
//! assert_eq!(reply.body, Value::int(42));
//! system.shutdown();
//! ```

#![deny(unsafe_code)]

pub mod actor;
pub mod codec;
pub mod ctx;
pub mod group;
pub mod hook;
pub mod mailbox;
pub mod message;
pub mod scheduler;
pub mod system;
pub mod transport;
pub mod value;

pub use actor::{from_fn, Behavior, BoxBehavior};
pub use ctx::Ctx;
pub use group::{broadcast_sequencer, spawn_broadcast_sequencer};
pub use hook::CoordinatorHook;
pub use message::{Envelope, Message, Port};
pub use system::{ActorHandle, ActorSystem, Config, Stats};
pub use transport::{ChannelTransport, FnTransport, Transport};
pub use value::Value;
