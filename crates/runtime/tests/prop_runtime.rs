//! Property/stress tests for the runtime: per-sender FIFO, losslessness
//! under churn, and quiescence correctness.

use std::sync::atomic::{AtomicUsize, Ordering};
use std::sync::Arc;
use std::time::Duration;

use actorspace_atoms::path;
use actorspace_lockcheck::{LockClass, Mutex};
use actorspace_pattern::pattern;
use actorspace_runtime::{from_fn, ActorSystem, Config, Value};
use proptest::prelude::*;

const TIMEOUT: Duration = Duration::from_secs(30);

/// Messages from ONE sender to ONE receiver are delivered in send order
/// (per-port FIFO), whatever the worker count and batch size.
#[test]
fn per_sender_fifo_is_preserved() {
    for workers in [1usize, 2, 4] {
        for batch in [1usize, 4, 64] {
            let sys = ActorSystem::new(Config {
                workers,
                batch,
                ..Config::default()
            });
            let log = Arc::new(Mutex::new(
                LockClass::Other("test.runtime.fifo_log"),
                Vec::new(),
            ));
            let l = log.clone();
            let receiver = sys.spawn(from_fn(move |_ctx, msg| {
                l.lock().push(msg.body.as_int().unwrap());
            }));
            let rid = receiver.id();
            // The sender is itself an actor: its sends happen in program
            // order from a single behavior activation sequence.
            let sender = sys.spawn(from_fn(move |ctx, msg| {
                let n = msg.body.as_int().unwrap();
                for i in 0..n {
                    ctx.send_addr(rid, Value::int(i));
                }
            }));
            sender.send(Value::int(500));
            assert!(sys.await_idle(TIMEOUT));
            assert_eq!(
                *log.lock(),
                (0..500).collect::<Vec<i64>>(),
                "workers={workers} batch={batch}"
            );
            sys.shutdown();
        }
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(10))]

    /// Under random interleavings of sends and visibility churn, no
    /// message is ever lost: each is delivered or still suspended.
    #[test]
    fn sends_are_never_lost_under_churn(
        script in proptest::collection::vec((0u8..3, 0usize..4), 1..60)
    ) {
        let sys = ActorSystem::new(Config { workers: 2, ..Config::default() });
        let space = sys.create_space(None).unwrap();
        let received = Arc::new(AtomicUsize::new(0));
        let mut visible: Vec<Option<actorspace_core::ActorId>> = vec![None; 4];
        let mut sent = 0usize;
        for (op, slot) in script {
            match op {
                // Send into the space (suspends if nothing visible).
                0 => {
                    sys.send_pattern(&pattern("w/*"), space, Value::Unit, None).unwrap();
                    sent += 1;
                }
                // Ensure a worker is visible in this slot.
                1 => {
                    if visible[slot].is_none() {
                        let r = received.clone();
                        let a = sys.spawn(from_fn(move |_ctx, _msg| {
                            r.fetch_add(1, Ordering::Relaxed);
                        }));
                        sys.make_visible(
                            a.id(),
                            &path(&format!("w/{slot}")),
                            space,
                            None,
                        ).unwrap();
                        visible[slot] = Some(a.leak());
                    }
                }
                // Withdraw the slot's worker.
                _ => {
                    if let Some(id) = visible[slot].take() {
                        sys.make_invisible(id, space, None).unwrap();
                    }
                }
            }
        }
        // Make one worker visible so any still-suspended messages drain.
        let r = received.clone();
        let a = sys.spawn(from_fn(move |_ctx, _msg| {
            r.fetch_add(1, Ordering::Relaxed);
        }));
        sys.make_visible(a.id(), &path("w/final"), space, None).unwrap();
        prop_assert!(sys.await_idle(TIMEOUT));
        prop_assert_eq!(received.load(Ordering::Relaxed), sent,
            "sent {} but received {}", sent, received.load(Ordering::Relaxed));
        sys.shutdown();
    }

    /// Quiescence means quiescence: after await_idle returns true, no
    /// further deliveries happen without new input.
    #[test]
    fn await_idle_is_stable(n in 1usize..200) {
        let sys = ActorSystem::new(Config { workers: 2, ..Config::default() });
        let count = Arc::new(AtomicUsize::new(0));
        let c = count.clone();
        let a = sys.spawn(from_fn(move |_ctx, _msg| {
            c.fetch_add(1, Ordering::Relaxed);
        }));
        for _ in 0..n {
            a.send(Value::Unit);
        }
        prop_assert!(sys.await_idle(TIMEOUT));
        let at_idle = count.load(Ordering::Relaxed);
        prop_assert_eq!(at_idle, n);
        std::thread::sleep(Duration::from_millis(5));
        prop_assert_eq!(count.load(Ordering::Relaxed), at_idle);
        sys.shutdown();
    }
}

/// Hammering one pattern from many OS threads while replicas churn
/// visibility: total delivered + suspended must equal total sent.
#[test]
fn concurrent_pattern_sends_account_for_every_message() {
    let sys = Arc::new(ActorSystem::new(Config {
        workers: 4,
        ..Config::default()
    }));
    let space = sys.create_space(None).unwrap();
    let received = Arc::new(AtomicUsize::new(0));
    // One stable worker so sends always match.
    let r = received.clone();
    let w = sys.spawn(from_fn(move |_ctx, _msg| {
        r.fetch_add(1, Ordering::Relaxed);
    }));
    sys.make_visible(w.id(), &path("sink"), space, None)
        .unwrap();

    let senders = 4;
    let per = 2_000;
    let mut handles = Vec::new();
    for _ in 0..senders {
        let sys = sys.clone();
        handles.push(std::thread::spawn(move || {
            for _ in 0..per {
                sys.send_pattern(&pattern("sink"), space, Value::Unit, None)
                    .unwrap();
            }
        }));
    }
    for h in handles {
        h.join().unwrap();
    }
    assert!(sys.await_idle(TIMEOUT));
    assert_eq!(received.load(Ordering::Relaxed), senders * per);
    sys.shutdown();
}
