//! Property tests for the wire codec: arbitrary values round-trip, and
//! arbitrary byte soup never panics the decoder.

use actorspace_core::{ActorId, SpaceId};
use actorspace_runtime::codec::{decode_message, decode_value, message_to_bytes, value_to_bytes};
use actorspace_runtime::{Message, Port, Value};
use proptest::prelude::*;

fn arb_value() -> impl Strategy<Value = Value> {
    let leaf = prop_oneof![
        Just(Value::Unit),
        any::<bool>().prop_map(Value::Bool),
        any::<i64>().prop_map(Value::Int),
        // Finite floats only: NaN breaks PartialEq-based round-trip
        // comparison (bitwise preservation is unit-tested separately).
        (-1e18f64..1e18).prop_map(Value::Float),
        "[a-z0-9 /_.-]{0,24}".prop_map(Value::str),
        "[a-z][a-z0-9-]{0,8}".prop_map(|s| Value::atom(&s)),
        any::<u64>().prop_map(|i| Value::Addr(ActorId(i))),
        any::<u64>().prop_map(|i| Value::Space(SpaceId(i))),
    ];
    leaf.prop_recursive(3, 48, 6, |inner| {
        proptest::collection::vec(inner, 0..6).prop_map(Value::list)
    })
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(256))]

    #[test]
    fn values_round_trip(v in arb_value()) {
        let bytes = value_to_bytes(&v);
        let got = decode_value(&bytes).expect("decode");
        prop_assert_eq!(got, v);
    }

    #[test]
    fn messages_round_trip(v in arb_value(), from in proptest::option::of(any::<u64>()),
                           port in 0u8..3) {
        let m = Message {
            from: from.map(ActorId),
            body: v,
            port: match port { 0 => Port::Behavior, 1 => Port::Rpc, _ => Port::Invocation },
        };
        let got = decode_message(&message_to_bytes(&m)).expect("decode");
        prop_assert_eq!(got.from, m.from);
        prop_assert_eq!(got.port, m.port);
        prop_assert_eq!(got.body, m.body);
    }

    /// The decoder is total: random bytes yield Ok or Err, never a panic,
    /// and never read out of bounds.
    #[test]
    fn decoder_never_panics(bytes in proptest::collection::vec(any::<u8>(), 0..200)) {
        let _ = decode_value(&bytes);
        let _ = decode_message(&bytes);
    }

    /// Truncating a valid encoding always errors (no partial values).
    #[test]
    fn truncation_is_detected(v in arb_value()) {
        let bytes = value_to_bytes(&v);
        if bytes.len() > 1 {
            let cut = bytes.len() / 2;
            prop_assert!(decode_value(&bytes[..cut]).is_err());
        }
    }
}
