//! End-to-end tests of the single-node runtime: scheduling, the Actor
//! primitives, pattern communication, suspension semantics, quiescence, and
//! fault behavior.

use std::sync::atomic::{AtomicUsize, Ordering};
use std::sync::Arc;
use std::time::Duration;

use actorspace_atoms::path;
use actorspace_core::{ManagerPolicy, SelectionPolicy, UnmatchedPolicy};
use actorspace_pattern::pattern;
use actorspace_runtime::{from_fn, ActorSystem, Behavior, Config, Ctx, Message, Value};

const TIMEOUT: Duration = Duration::from_secs(10);

fn system() -> ActorSystem {
    let cfg = Config {
        workers: 3,
        ..Default::default()
    };
    ActorSystem::new(cfg)
}

#[test]
fn point_to_point_send_and_reply() {
    let sys = system();
    let (inbox, rx) = sys.inbox();
    let echo = sys.spawn(from_fn(move |ctx, msg| {
        ctx.send_addr(inbox, msg.body);
    }));
    assert!(echo.send(Value::int(99)));
    assert_eq!(rx.recv_timeout(TIMEOUT).unwrap().body, Value::int(99));
    sys.shutdown();
}

#[test]
fn sender_address_is_carried() {
    let sys = system();
    let (inbox, rx) = sys.inbox();
    // `prober` sends to `reflector`, which replies to the *sender*;
    // `prober` then forwards the reply to the inbox.
    let reflector = sys.spawn(from_fn(|ctx, msg| {
        ctx.reply(msg.body);
    }));
    let reflector_id = reflector.id();
    let prober = sys.spawn(from_fn(move |ctx, msg| {
        if msg.body == Value::str("go") {
            ctx.send_addr(reflector_id, Value::int(5));
        } else {
            ctx.send_addr(inbox, msg.body);
        }
    }));
    prober.send(Value::str("go"));
    assert_eq!(rx.recv_timeout(TIMEOUT).unwrap().body, Value::int(5));
    sys.shutdown();
}

#[test]
fn become_replaces_behavior_counter_style() {
    // The classic history-sensitive counter: each message increments by
    // becoming a new closure over the incremented value.
    struct Counter {
        n: i64,
        report_to: actorspace_core::ActorId,
    }
    impl Behavior for Counter {
        fn receive(&mut self, ctx: &mut Ctx<'_>, msg: Message) {
            match msg.body {
                Value::Str(ref s) if &**s == "get" => {
                    ctx.send_addr(self.report_to, Value::int(self.n));
                }
                _ => {
                    let next = Counter {
                        n: self.n + 1,
                        report_to: self.report_to,
                    };
                    ctx.become_(next);
                }
            }
        }
    }
    let sys = system();
    let (inbox, rx) = sys.inbox();
    let counter = sys.spawn(Counter {
        n: 0,
        report_to: inbox,
    });
    for _ in 0..5 {
        counter.send(Value::str("inc"));
    }
    counter.send(Value::str("get"));
    assert_eq!(rx.recv_timeout(TIMEOUT).unwrap().body, Value::int(5));
    sys.shutdown();
}

#[test]
fn send_behavior_port_replaces_behavior() {
    let sys = system();
    let (inbox, rx) = sys.inbox();
    let actor = sys.spawn(from_fn(move |ctx, _| {
        ctx.send_addr(inbox, Value::str("old"));
    }));
    actor.send(Value::Unit);
    assert_eq!(rx.recv_timeout(TIMEOUT).unwrap().body, Value::str("old"));
    sys.await_idle(TIMEOUT);
    // Install the new behavior via the Behavior port (§7.2).
    sys.send_behavior(
        actor.id(),
        from_fn(move |ctx, _| {
            ctx.send_addr(inbox, Value::str("new"));
        }),
    );
    sys.await_idle(TIMEOUT);
    actor.send(Value::Unit);
    assert_eq!(rx.recv_timeout(TIMEOUT).unwrap().body, Value::str("new"));
    sys.shutdown();
}

#[test]
fn actors_create_actors() {
    let sys = system();
    let (inbox, rx) = sys.inbox();
    let parent = sys.spawn(from_fn(move |ctx, msg| {
        // Create a child that forwards to the inbox, then send it the body.
        let child = ctx.create(from_fn(move |cctx, m| {
            cctx.send_addr(inbox, m.body);
        }));
        ctx.send_addr(child, msg.body);
    }));
    parent.send(Value::int(123));
    assert_eq!(rx.recv_timeout(TIMEOUT).unwrap().body, Value::int(123));
    sys.shutdown();
}

#[test]
fn pattern_send_reaches_visible_actor_only() {
    let sys = system();
    let space = sys.create_space(None).unwrap();
    let (inbox, rx) = sys.inbox();
    let visible = sys.spawn(from_fn(move |ctx, msg| {
        ctx.send_addr(inbox, Value::list([Value::str("visible"), msg.body]));
    }));
    let _hidden = sys.spawn(from_fn(move |ctx, msg| {
        ctx.send_addr(inbox, Value::list([Value::str("hidden"), msg.body]));
    }));
    sys.make_visible(visible.id(), &path("srv/a"), space, None)
        .unwrap();
    sys.send_pattern(&pattern("srv/*"), space, Value::int(1), None)
        .unwrap();
    let got = rx.recv_timeout(TIMEOUT).unwrap();
    assert_eq!(got.body.as_list().unwrap()[0], Value::str("visible"));
    sys.shutdown();
}

#[test]
fn broadcast_reaches_every_visible_actor() {
    let sys = system();
    let space = sys.create_space(None).unwrap();
    let (inbox, rx) = sys.inbox();
    let n = 16;
    let mut handles = Vec::new();
    for i in 0..n {
        let a = sys.spawn(from_fn(move |ctx, msg| {
            ctx.send_addr(inbox, Value::list([Value::int(i), msg.body]));
        }));
        sys.make_visible(a.id(), &path("node"), space, None)
            .unwrap();
        handles.push(a);
    }
    sys.broadcast(&pattern("node"), space, Value::str("bound"), None)
        .unwrap();
    let mut seen = std::collections::HashSet::new();
    for _ in 0..n {
        let m = rx.recv_timeout(TIMEOUT).unwrap();
        seen.insert(m.body.as_list().unwrap()[0].as_int().unwrap());
    }
    assert_eq!(seen.len(), n as usize);
    sys.shutdown();
}

#[test]
fn suspended_message_released_by_late_arrival() {
    let sys = system();
    let space = sys.create_space(None).unwrap();
    let (inbox, rx) = sys.inbox();
    // Send before any worker exists (§5.6 default: suspend).
    sys.send_pattern(&pattern("late"), space, Value::int(7), None)
        .unwrap();
    assert!(rx.recv_timeout(Duration::from_millis(100)).is_err());
    let late = sys.spawn(from_fn(move |ctx, msg| {
        ctx.send_addr(inbox, msg.body);
    }));
    sys.make_visible(late.id(), &path("late"), space, None)
        .unwrap();
    assert_eq!(rx.recv_timeout(TIMEOUT).unwrap().body, Value::int(7));
    sys.shutdown();
}

#[test]
fn actor_makes_itself_visible_and_receives_work() {
    // §5.4: actors make themselves visible.
    let sys = system();
    let space = sys.create_space(None).unwrap();
    let (inbox, rx) = sys.inbox();
    struct SelfAdvertiser {
        space: actorspace_core::SpaceId,
        inbox: actorspace_core::ActorId,
    }
    impl Behavior for SelfAdvertiser {
        fn on_start(&mut self, ctx: &mut Ctx<'_>) {
            ctx.make_self_visible(&path("self-made"), self.space, None)
                .unwrap();
        }
        fn receive(&mut self, ctx: &mut Ctx<'_>, msg: Message) {
            ctx.send_addr(self.inbox, msg.body);
        }
    }
    let _a = sys.spawn(SelfAdvertiser { space, inbox });
    sys.await_idle(TIMEOUT);
    sys.send_pattern(&pattern("self-made"), space, Value::int(3), None)
        .unwrap();
    assert_eq!(rx.recv_timeout(TIMEOUT).unwrap().body, Value::int(3));
    sys.shutdown();
}

#[test]
fn round_robin_policy_via_system_api() {
    let sys = system();
    let policy = ManagerPolicy {
        selection: SelectionPolicy::RoundRobin,
        ..Default::default()
    };
    let space = sys.create_space(None).unwrap();
    sys.set_space_policy(space, policy, None).unwrap();
    let (inbox, rx) = sys.inbox();
    let mut ids = Vec::new();
    for _ in 0..3 {
        let a = sys.spawn(from_fn(move |ctx, _| {
            let me = ctx.self_id();
            ctx.send_addr(inbox, Value::Addr(me));
        }));
        sys.make_visible(a.id(), &path("w"), space, None).unwrap();
        ids.push(a);
    }
    for _ in 0..6 {
        sys.send_pattern(&pattern("w"), space, Value::Unit, None)
            .unwrap();
    }
    let mut got = Vec::new();
    for _ in 0..6 {
        got.push(rx.recv_timeout(TIMEOUT).unwrap().body.as_addr().unwrap());
    }
    // Each worker exactly twice.
    let mut counts = std::collections::HashMap::new();
    for a in got {
        *counts.entry(a).or_insert(0) += 1;
    }
    assert!(counts.values().all(|&c| c == 2), "{counts:?}");
    sys.shutdown();
}

#[test]
fn stop_removes_actor_and_later_sends_dead_letter() {
    let sys = system();
    let (inbox, rx) = sys.inbox();
    let once = sys.spawn(from_fn(move |ctx, msg| {
        ctx.send_addr(inbox, msg.body);
        ctx.stop();
    }));
    once.send(Value::int(1));
    assert_eq!(rx.recv_timeout(TIMEOUT).unwrap().body, Value::int(1));
    sys.await_idle(TIMEOUT);
    let before = sys.stats().dead_letters;
    assert!(
        !once.send(Value::int(2)),
        "send to stopped actor should fail"
    );
    sys.await_idle(TIMEOUT);
    assert!(sys.stats().dead_letters > before);
    sys.shutdown();
}

#[test]
fn panicking_behavior_does_not_kill_the_system() {
    let sys = system();
    let (inbox, rx) = sys.inbox();
    let flaky = sys.spawn(from_fn(move |ctx, msg| {
        if msg.body == Value::str("boom") {
            panic!("injected failure");
        }
        ctx.send_addr(inbox, msg.body);
    }));
    flaky.send(Value::str("boom"));
    flaky.send(Value::int(42)); // the actor survives the panic
    assert_eq!(rx.recv_timeout(TIMEOUT).unwrap().body, Value::int(42));
    sys.shutdown();
}

#[test]
fn await_idle_reflects_quiescence() {
    let sys = system();
    let counter = Arc::new(AtomicUsize::new(0));
    let c2 = counter.clone();
    // A chain: each message under 1000 re-sends to self.
    let actor = sys.spawn(from_fn(move |ctx, msg| {
        let n = msg.body.as_int().unwrap();
        c2.fetch_add(1, Ordering::Relaxed);
        if n < 999 {
            let me = ctx.self_id();
            ctx.send_addr(me, Value::int(n + 1));
        }
    }));
    actor.send(Value::int(0));
    assert!(sys.await_idle(TIMEOUT), "must reach quiescence");
    assert_eq!(counter.load(Ordering::Relaxed), 1000);
    assert_eq!(sys.stats().pending, 0);
    sys.shutdown();
}

#[test]
fn gc_collects_dropped_handles_and_keeps_visible_actors() {
    let sys = system();
    let space = sys.create_space(None).unwrap();
    let keep = sys.spawn(from_fn(|_, _| {}));
    sys.make_visible(keep.id(), &path("kept"), space, None)
        .unwrap();
    let keep_id = keep.id();
    // `keep` is visible in a space that is itself invisible — root it via
    // the handle. Drop a second actor's handle entirely.
    let drop_me = sys.spawn(from_fn(|_, _| {}));
    let drop_id = drop_me.id();
    drop(drop_me);
    sys.await_idle(TIMEOUT);
    let report = sys.collect_garbage(&|_| Vec::new());
    assert!(report.collected_actors.contains(&drop_id));
    assert!(!report.collected_actors.contains(&keep_id));
    // The collected actor's mailbox is gone: sends fail.
    assert!(!sys.send_to(drop_id, Value::Unit));
    assert!(keep.send(Value::Unit));
    sys.shutdown();
}

#[test]
fn unmatched_error_policy_surfaces_to_sender() {
    let sys = system();
    let policy = ManagerPolicy {
        unmatched_send: UnmatchedPolicy::Error,
        ..Default::default()
    };
    let space = sys.create_space(None).unwrap();
    sys.set_space_policy(space, policy, None).unwrap();
    let err = sys
        .send_pattern(&pattern("ghost"), space, Value::Unit, None)
        .unwrap_err();
    assert!(matches!(err, actorspace_core::Error::NoMatch { .. }));
    sys.shutdown();
}

#[test]
fn capability_protected_visibility_through_system_api() {
    let sys = system();
    let cap = sys.new_capability();
    let space = sys.create_space(None).unwrap();
    let guarded = sys
        .spawn_in(actorspace_core::ROOT_SPACE, from_fn(|_, _| {}), Some(&cap))
        .unwrap();
    assert!(sys
        .make_visible(guarded.id(), &path("x"), space, None)
        .is_err());
    sys.make_visible(guarded.id(), &path("x"), space, Some(&cap))
        .unwrap();
    sys.shutdown();
}

#[test]
fn divide_and_conquer_fan_out_fan_in() {
    // A miniature of the paper's §6 pool: recursive sum over a range by
    // splitting into child actors.
    struct Summer;
    impl Behavior for Summer {
        fn receive(&mut self, ctx: &mut Ctx<'_>, msg: Message) {
            let parts = msg.body.as_list().unwrap();
            let lo = parts[0].as_int().unwrap();
            let hi = parts[1].as_int().unwrap();
            let reply_to = parts[2].as_addr().unwrap();
            if hi - lo <= 16 {
                let s: i64 = (lo..hi).sum();
                ctx.send_addr(reply_to, Value::int(s));
            } else {
                let mid = (lo + hi) / 2;
                // Collector joins the two halves.
                let mut acc: Option<i64> = None;
                let collector = ctx.create(from_fn(move |cctx, m| {
                    let v = m.body.as_int().unwrap();
                    match acc {
                        None => acc = Some(v),
                        Some(first) => {
                            cctx.send_addr(reply_to, Value::int(first + v));
                            cctx.stop();
                        }
                    }
                }));
                let left = ctx.create(Summer);
                let right = ctx.create(Summer);
                ctx.send_addr(
                    left,
                    Value::list([Value::int(lo), Value::int(mid), Value::Addr(collector)]),
                );
                ctx.send_addr(
                    right,
                    Value::list([Value::int(mid), Value::int(hi), Value::Addr(collector)]),
                );
            }
        }
    }
    let sys = system();
    let (inbox, rx) = sys.inbox();
    let root = sys.spawn(Summer);
    root.send(Value::list([
        Value::int(0),
        Value::int(10_000),
        Value::Addr(inbox),
    ]));
    let got = rx.recv_timeout(TIMEOUT).unwrap().body.as_int().unwrap();
    assert_eq!(got, (0..10_000i64).sum::<i64>());
    sys.shutdown();
}

#[test]
fn nested_space_pattern_send_through_runtime() {
    let sys = system();
    let outer = sys.create_space(None).unwrap();
    let inner = sys.create_space(None).unwrap();
    sys.make_visible(inner, &path("pool"), outer, None).unwrap();
    let (inbox, rx) = sys.inbox();
    let w = sys.spawn(from_fn(move |ctx, msg| {
        ctx.send_addr(inbox, msg.body);
    }));
    sys.make_visible(w.id(), &path("worker"), inner, None)
        .unwrap();
    sys.send_pattern(&pattern("pool/worker"), outer, Value::int(11), None)
        .unwrap();
    assert_eq!(rx.recv_timeout(TIMEOUT).unwrap().body, Value::int(11));
    sys.shutdown();
}

#[test]
fn stats_track_counts() {
    let sys = system();
    let s0 = sys.stats();
    assert_eq!(s0.spaces, 1); // root
    let _sp = sys.create_space(None).unwrap();
    let _a = sys.spawn(from_fn(|_, _| {}));
    sys.await_idle(TIMEOUT);
    let s1 = sys.stats();
    assert_eq!(s1.spaces, 2);
    assert!(s1.actors >= 1);
    assert_eq!(s1.pending, 0);
    sys.shutdown();
}

#[test]
fn heavy_concurrent_traffic_is_lossless() {
    let sys = ActorSystem::new(Config {
        workers: 4,
        ..Config::default()
    });
    let space = sys.create_space(None).unwrap();
    let received = Arc::new(AtomicUsize::new(0));
    let mut handles = Vec::new();
    for _ in 0..8 {
        let r = received.clone();
        let a = sys.spawn(from_fn(move |_, _| {
            r.fetch_add(1, Ordering::Relaxed);
        }));
        sys.make_visible(a.id(), &path("sink"), space, None)
            .unwrap();
        handles.push(a);
    }
    let n = 10_000;
    for _ in 0..n {
        sys.send_pattern(&pattern("sink"), space, Value::Unit, None)
            .unwrap();
    }
    assert!(sys.await_idle(TIMEOUT));
    assert_eq!(received.load(Ordering::Relaxed), n);
    sys.shutdown();
}
