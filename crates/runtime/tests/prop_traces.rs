//! Trace lifecycle properties: with full sampling, every message the
//! system delivers leaves a trace that ends in exactly one terminal event
//! (`delivered` or `dead_lettered`), with per-stage timestamps that never
//! run backwards.

use std::sync::atomic::{AtomicUsize, Ordering};
use std::sync::Arc;
use std::time::Duration;

use actorspace_atoms::path;
use actorspace_obs::{Obs, ObsConfig, Stage};
use actorspace_pattern::pattern;
use actorspace_runtime::{from_fn, ActorSystem, Config, Value};
use proptest::prelude::*;

const TIMEOUT: Duration = Duration::from_secs(30);

fn traced_system() -> (ActorSystem, Arc<Obs>) {
    let obs = Obs::shared(ObsConfig::all());
    let sys = ActorSystem::new(Config {
        obs: Some(obs.clone()),
        ..Config::default()
    });
    (sys, obs)
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(12))]

    /// Random mixes of matched sends, unmatched-then-woken sends, and
    /// discarded sends: every trace with a terminal event has EXACTLY one,
    /// every processed message's trace ends in `delivered`, and stage
    /// timestamps are monotone within each trace.
    #[test]
    fn every_trace_ends_in_exactly_one_terminal_event(
        n_matched in 1usize..40,
        n_suspended in 0usize..10,
    ) {
        let (sys, obs) = traced_system();
        let space = sys.create_space(None).unwrap();
        let processed = Arc::new(AtomicUsize::new(0));

        let p = processed.clone();
        let worker = sys.spawn(from_fn(move |_ctx, _msg| {
            p.fetch_add(1, Ordering::Relaxed);
        }));
        sys.make_visible(worker.id(), &path("svc/a"), space, None).unwrap();

        for i in 0..n_matched {
            sys.send_pattern(&pattern("svc/*"), space, Value::int(i as i64), None).unwrap();
        }
        // Unmatched sends suspend (§5.6 default) and wake when a match
        // appears.
        for i in 0..n_suspended {
            sys.send_pattern(&pattern("late/*"), space, Value::int(i as i64), None).unwrap();
        }
        let late = sys.spawn(from_fn(|_ctx, _msg| {}));
        sys.make_visible(late.id(), &path("late/x"), space, None).unwrap();

        prop_assert!(sys.await_idle(TIMEOUT));
        let expected = n_matched + n_suspended;
        prop_assert_eq!(obs.tracer.complete_traces().len(), expected);

        for t in obs.tracer.complete_traces() {
            let events = obs.tracer.events_for(t);
            let terminals = events.iter().filter(|e| e.stage.is_terminal()).count();
            prop_assert_eq!(terminals, 1, "trace {} has {} terminal events", t, terminals);
            prop_assert!(
                matches!(events.first().map(|e| e.stage), Some(Stage::Submitted { .. })),
                "trace {} does not start with submitted", t
            );
            prop_assert!(
                events.last().unwrap().stage.is_terminal(),
                "trace {} does not end with its terminal event", t
            );
            let mut last = 0u64;
            for e in &events {
                prop_assert!(e.at_nanos >= last, "timestamps ran backwards in trace {}", t);
                last = e.at_nanos;
            }
        }
        sys.shutdown();
    }
}

#[test]
fn suspended_sends_trace_through_suspension_and_wake() {
    let (sys, obs) = traced_system();
    let space = sys.create_space(None).unwrap();
    sys.send_pattern(&pattern("svc/*"), space, Value::int(1), None)
        .unwrap();
    let worker = sys.spawn(from_fn(|_ctx, _msg| {}));
    sys.make_visible(worker.id(), &path("svc/a"), space, None)
        .unwrap();
    assert!(sys.await_idle(TIMEOUT));

    let traces = obs.tracer.complete_traces();
    assert_eq!(traces.len(), 1);
    let stages: Vec<&'static str> = obs
        .tracer
        .events_for(traces[0])
        .iter()
        .map(|e| e.stage.name())
        .collect();
    // The wake-time re-resolution folds matching into `woken`, so no
    // separate `matched` stage appears on the retry path.
    assert_eq!(
        stages,
        vec!["submitted", "suspended", "woken", "routed", "delivered"]
    );
    sys.shutdown();
}
