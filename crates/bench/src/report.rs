//! Minimal reporting utilities for the `experiments` binary.

use std::time::{Duration, Instant};

/// Times one closure invocation.
pub fn time_it<R>(f: impl FnOnce() -> R) -> (R, Duration) {
    let t0 = Instant::now();
    let r = f();
    (r, t0.elapsed())
}

/// A fixed-width text table that prints like the rows a paper reports.
pub struct Table {
    title: String,
    headers: Vec<String>,
    rows: Vec<Vec<String>>,
    /// Extra machine-readable attachments emitted under `"meta"` in
    /// [`Table::to_json`]. Values are raw JSON fragments, so whole metric
    /// snapshots ([`Snapshot::to_json`](actorspace_obs::Snapshot::to_json))
    /// embed without re-encoding.
    meta: Vec<(String, String)>,
}

impl Table {
    /// Starts a table with a title and column headers.
    pub fn new(title: &str, headers: &[&str]) -> Table {
        Table {
            title: title.to_owned(),
            headers: headers.iter().map(|s| s.to_string()).collect(),
            rows: Vec::new(),
            meta: Vec::new(),
        }
    }

    /// Adds one row (stringified cells).
    pub fn row(&mut self, cells: &[String]) {
        assert_eq!(cells.len(), self.headers.len(), "row arity mismatch");
        self.rows.push(cells.to_vec());
    }

    /// Attaches a raw JSON fragment under `key` in the `"meta"` object of
    /// [`Table::to_json`]. The caller is responsible for `raw_json` being
    /// valid JSON (a number, string, object, …).
    pub fn meta_json(&mut self, key: &str, raw_json: &str) {
        self.meta.push((key.to_owned(), raw_json.to_owned()));
    }

    /// Renders the table to stdout.
    pub fn print(&self) {
        let mut widths: Vec<usize> = self.headers.iter().map(|h| h.len()).collect();
        for row in &self.rows {
            for (i, c) in row.iter().enumerate() {
                widths[i] = widths[i].max(c.len());
            }
        }
        println!("\n== {} ==", self.title);
        let header: Vec<String> = self
            .headers
            .iter()
            .enumerate()
            .map(|(i, h)| format!("{h:>width$}", width = widths[i]))
            .collect();
        println!("{}", header.join("  "));
        println!(
            "{}",
            widths
                .iter()
                .map(|w| "-".repeat(*w))
                .collect::<Vec<_>>()
                .join("  ")
        );
        for row in &self.rows {
            let line: Vec<String> = row
                .iter()
                .enumerate()
                .map(|(i, c)| format!("{c:>width$}", width = widths[i]))
                .collect();
            println!("{}", line.join("  "));
        }
    }

    /// Renders the table as a JSON object — `{"title", "headers", "rows"}`
    /// with rows as arrays of strings — for machine-readable report
    /// capture (e.g. trend tracking across CI runs).
    pub fn to_json(&self) -> String {
        fn esc(s: &str) -> String {
            let mut out = String::with_capacity(s.len());
            for ch in s.chars() {
                match ch {
                    '"' => out.push_str("\\\""),
                    '\\' => out.push_str("\\\\"),
                    '\n' => out.push_str("\\n"),
                    c if (c as u32) < 0x20 => out.push_str(&format!("\\u{:04x}", c as u32)),
                    c => out.push(c),
                }
            }
            out
        }
        let headers: Vec<String> = self
            .headers
            .iter()
            .map(|h| format!("\"{}\"", esc(h)))
            .collect();
        let rows: Vec<String> = self
            .rows
            .iter()
            .map(|r| {
                let cells: Vec<String> = r.iter().map(|c| format!("\"{}\"", esc(c))).collect();
                format!("[{}]", cells.join(","))
            })
            .collect();
        let meta = if self.meta.is_empty() {
            String::new()
        } else {
            let entries: Vec<String> = self
                .meta
                .iter()
                .map(|(k, v)| format!("\"{}\":{}", esc(k), v))
                .collect();
            format!(",\"meta\":{{{}}}", entries.join(","))
        };
        format!(
            "{{\"title\":\"{}\",\"headers\":[{}],\"rows\":[{}]{}}}",
            esc(&self.title),
            headers.join(","),
            rows.join(","),
            meta
        )
    }

    /// Renders the table to a string (for EXPERIMENTS.md capture).
    pub fn to_markdown(&self) -> String {
        let mut out = String::new();
        out.push_str(&format!("### {}\n\n", self.title));
        out.push_str(&format!("| {} |\n", self.headers.join(" | ")));
        out.push_str(&format!(
            "|{}|\n",
            self.headers
                .iter()
                .map(|_| "---")
                .collect::<Vec<_>>()
                .join("|")
        ));
        for row in &self.rows {
            out.push_str(&format!("| {} |\n", row.join(" | ")));
        }
        out
    }
}

/// Formats a duration compactly (µs / ms / s).
pub fn fmt_dur(d: Duration) -> String {
    let us = d.as_micros();
    if us < 1_000 {
        format!("{us}µs")
    } else if us < 1_000_000 {
        format!("{:.2}ms", us as f64 / 1_000.0)
    } else {
        format!("{:.2}s", us as f64 / 1_000_000.0)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn table_renders_markdown() {
        let mut t = Table::new("demo", &["a", "b"]);
        t.row(&["1".into(), "2".into()]);
        let md = t.to_markdown();
        assert!(md.contains("### demo"));
        assert!(md.contains("| 1 | 2 |"));
    }

    #[test]
    fn table_renders_json() {
        let mut t = Table::new("fail\"over", &["pool", "time"]);
        t.row(&["1".into(), "42.00ms".into()]);
        t.row(&["8".into(), "43.10ms".into()]);
        assert_eq!(
            t.to_json(),
            "{\"title\":\"fail\\\"over\",\"headers\":[\"pool\",\"time\"],\
             \"rows\":[[\"1\",\"42.00ms\"],[\"8\",\"43.10ms\"]]}"
        );
    }

    #[test]
    fn meta_embeds_raw_json() {
        let mut t = Table::new("t", &["a"]);
        t.row(&["1".into()]);
        t.meta_json("overhead_pct", "3.14");
        t.meta_json("snapshot", "{\"at_nanos\":7,\"entries\":[]}");
        assert_eq!(
            t.to_json(),
            "{\"title\":\"t\",\"headers\":[\"a\"],\"rows\":[[\"1\"]],\
             \"meta\":{\"overhead_pct\":3.14,\
             \"snapshot\":{\"at_nanos\":7,\"entries\":[]}}}"
        );
    }

    #[test]
    fn duration_formatting() {
        assert_eq!(fmt_dur(Duration::from_micros(5)), "5µs");
        assert_eq!(fmt_dur(Duration::from_micros(2_500)), "2.50ms");
        assert_eq!(fmt_dur(Duration::from_secs(3)), "3.00s");
    }

    #[test]
    #[should_panic(expected = "row arity")]
    fn row_arity_checked() {
        let mut t = Table::new("x", &["a"]);
        t.row(&["1".into(), "2".into()]);
    }
}
