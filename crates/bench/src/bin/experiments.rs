//! Regenerates every experiment row recorded in EXPERIMENTS.md.
//!
//! Run with: `cargo run -p actorspace-bench --bin experiments --release`
//!
//! Prints one table per experiment (E1–E11). Wall-clock numbers vary by
//! machine; the *shapes* (who wins, by what factor, where crossovers fall)
//! are what EXPERIMENTS.md compares against the paper's claims.

use std::sync::Arc;
use std::time::{Duration, Instant};

use actorspace_atoms::{atom, path};
use actorspace_baselines::tuple_space::{exact, wild, Field, TuplePattern, TupleSpace};
use actorspace_baselines::NameServer;
use actorspace_bench::report::{fmt_dur, time_it, Table};
use actorspace_bench::workloads::{pool, repo, tsp};
use actorspace_core::{
    policy::{ManagerPolicy, SelectionPolicy, UnmatchedPolicy},
    ActorId, Registry, ShardedRegistry, SpaceId, ROOT_SPACE,
};
use actorspace_net::{Cluster, ClusterConfig, FailureConfig, LinkConfig, OrderingProtocol};
use actorspace_obs::{names, Obs, ObsConfig};
use actorspace_pattern::{pattern, Pattern};
use actorspace_runtime::{from_fn, ActorSystem, Config, Value};

fn main() {
    let only: Option<String> = std::env::args().nth(1);
    let run = |name: &str| only.as_deref().is_none_or(|o| o.eq_ignore_ascii_case(name));

    println!("ActorSpace experiment harness — one table per EXPERIMENTS.md entry");
    if run("e1") {
        e1_process_pool();
    }
    if run("e2") {
        e2_single_node();
    }
    if run("e3") {
        e3_coordinator_bus();
    }
    if run("e4") {
        e4_load_balance();
    }
    if run("e5") {
        e5_broadcast();
    }
    if run("e6") {
        e6_unmatched();
    }
    if run("e7") {
        e7_cycles();
    }
    if run("e8") {
        e8_linda();
    }
    if run("e9") {
        e9_tsp();
    }
    if run("e10") {
        e10_gc();
    }
    if run("e11") {
        e11_repository();
    }
    if run("e12") {
        e12_attr_index();
    }
    if run("e13") {
        e13_tracing_overhead();
    }
    if run("e14") {
        e14_shard_contention();
    }
    if run("e15") {
        e15_obs_stream_overhead();
    }
}

// ---------------------------------------------------------------- E1

fn e1_process_pool() {
    let mut t = Table::new(
        "E1 (Figure 1): dynamic process pool — divide & conquer, 128 leaf jobs",
        &["workers", "wall", "speedup", "min/max leaf share"],
    );
    let base = pool::PoolParams {
        range: 1 << 16,
        grain: 512,
        work_per_item: 192,
        os_threads: 8,
        ..pool::PoolParams::default()
    };
    let mut t1 = None;
    for workers in [1usize, 2, 4, 8] {
        let out = pool::run_pool(&pool::PoolParams {
            initial_workers: workers,
            ..base.clone()
        });
        let wall = out.wall;
        if workers == 1 {
            t1 = Some(wall);
        }
        let speedup = t1
            .map(|b| b.as_secs_f64() / wall.as_secs_f64())
            .unwrap_or(1.0);
        let total: usize = out.distribution.iter().sum();
        let min = out.distribution.iter().min().copied().unwrap_or(0);
        let max = out.distribution.iter().max().copied().unwrap_or(0);
        t.row(&[
            workers.to_string(),
            fmt_dur(wall),
            format!("{speedup:.2}x"),
            format!(
                "{:.0}%/{:.0}%",
                100.0 * min as f64 / total as f64,
                100.0 * max as f64 / total as f64
            ),
        ]);
    }
    // Dynamic arrival row.
    let dynamic = pool::run_pool(&pool::PoolParams {
        initial_workers: 2,
        late_workers: 2,
        late_after: Duration::from_millis(3),
        ..base.clone()
    });
    let late_share: usize = dynamic.distribution[2..].iter().sum();
    let total: usize = dynamic.distribution.iter().sum();
    t.row(&[
        "2+2 late".into(),
        fmt_dur(dynamic.wall),
        "-".into(),
        format!(
            "late workers took {:.0}%",
            100.0 * late_share as f64 / total as f64
        ),
    ]);
    t.print();
    let cores = std::thread::available_parallelism()
        .map(|n| n.get())
        .unwrap_or(1);
    println!(
        "(host has {cores} core(s); wall-clock speedup needs >1 core — the reproducible \
         shapes here are the even leaf shares (no master bottleneck) and the live \
         absorption of work by late-arriving workers)"
    );
}

// ---------------------------------------------------------------- E2

fn e2_single_node() {
    // Message path throughput.
    let mut t = Table::new(
        "E2 (Figure 2): single-node message path",
        &["operation", "n", "total", "per op"],
    );
    {
        let sys = ActorSystem::new(Config {
            workers: 2,
            ..Config::default()
        });
        let sink = sys.spawn(from_fn(|_, _| {}));
        let n = 100_000u64;
        let (_, d) = time_it(|| {
            for _ in 0..n {
                sink.send(Value::int(1));
            }
            assert!(sys.await_idle(Duration::from_secs(60)));
        });
        t.row(&[
            "point-to-point send".into(),
            n.to_string(),
            fmt_dur(d),
            fmt_dur(d / n as u32),
        ]);
        let space = sys.create_space(None).unwrap();
        let a = sys.spawn(from_fn(|_, _| {}));
        sys.make_visible(a.id(), &path("srv/x"), space, None)
            .unwrap();
        let pat = pattern("srv/*");
        let n = 50_000u64;
        let (_, d) = time_it(|| {
            for _ in 0..n {
                sys.send_pattern(&pat, space, Value::int(1), None).unwrap();
            }
            assert!(sys.await_idle(Duration::from_secs(60)));
        });
        t.row(&[
            "pattern send (1 visible)".into(),
            n.to_string(),
            fmt_dur(d),
            fmt_dur(d / n as u32),
        ]);
        sys.shutdown();
    }
    // Resolution scaling.
    for n_actors in [100usize, 1_000, 10_000] {
        let mut reg: Registry<u64> = Registry::new(ManagerPolicy::default());
        let space = reg.create_space(None);
        let mut sink = |_: ActorId, _: u64, _: Option<&actorspace_core::Route>| {};
        for i in 0..n_actors {
            let a = reg.create_actor(space, None).unwrap();
            reg.make_visible(
                a.into(),
                vec![path(&format!("srv/class-{}/inst-{}", i % 97, i))],
                space,
                None,
                &mut sink,
            )
            .unwrap();
        }
        let reps = 200u32;
        for (name, pat) in [
            (
                "resolve exact",
                Pattern::parse("srv/class-1/inst-1").unwrap(),
            ),
            ("resolve wildcard", pattern("srv/class-1/*")),
            ("resolve full scan", pattern("**")),
        ] {
            let (_, d) = time_it(|| {
                for _ in 0..reps {
                    reg.resolve(&pat, space).unwrap();
                }
            });
            t.row(&[
                name.into(),
                format!("{n_actors} visible"),
                fmt_dur(d),
                fmt_dur(d / reps),
            ]);
        }
    }
    t.print();
}

// ---------------------------------------------------------------- E3

fn e3_coordinator_bus() {
    let mut t = Table::new(
        "E3 (Figure 3): coordinator bus — 40 ordered visibility changes/node",
        &["nodes", "protocol", "to coherence", "coherent view"],
    );
    for nodes in [2usize, 4, 8] {
        for (name, protocol) in [
            ("sequencer", OrderingProtocol::Sequencer),
            ("token bus", OrderingProtocol::TokenBus),
        ] {
            let cluster = Cluster::new(ClusterConfig {
                nodes,
                protocol,
                token_hop: Duration::from_micros(100),
                ..ClusterConfig::default()
            });
            let space = cluster.node(0).create_space(None);
            assert!(cluster.await_coherence(Duration::from_secs(30)));
            let t0 = Instant::now();
            for (i, node) in cluster.nodes().iter().enumerate() {
                for k in 0..40 {
                    let w = node.spawn(from_fn(|_, _| {}));
                    node.make_visible(w, &path(&format!("w/n{i}/k{k}")), space, None)
                        .unwrap();
                }
            }
            assert!(cluster.await_coherence(Duration::from_secs(60)));
            let d = t0.elapsed();
            // Verify all replicas agree.
            let views: Vec<usize> = cluster
                .nodes()
                .iter()
                .map(|n| n.system().resolve(&pattern("w/**"), space).unwrap().len())
                .collect();
            let agree = views.iter().all(|&v| v == nodes * 40);
            t.row(&[
                nodes.to_string(),
                name.into(),
                fmt_dur(d),
                if agree {
                    "yes".into()
                } else {
                    format!("DIVERGED {views:?}")
                },
            ]);
            cluster.shutdown();
        }
    }
    t.print();
}

// ---------------------------------------------------------------- E4

fn e4_load_balance() {
    let mut t = Table::new(
        "E4 (§5.3): load balance over k replicas, 4000 sends, same client pattern",
        &["replicas", "policy", "min share", "max share", "chi2/df"],
    );
    for k in [2usize, 4, 8, 16, 32] {
        for (name, sel) in [
            ("random", SelectionPolicy::Random),
            ("round-robin", SelectionPolicy::RoundRobin),
        ] {
            let policy = ManagerPolicy {
                selection: sel,
                selection_seed: Some(42),
                ..Default::default()
            };
            let mut reg: Registry<u64> = Registry::new(policy);
            let space = reg.create_space(None);
            let mut replicas = Vec::new();
            let mut sink0 = |_: ActorId, _: u64, _: Option<&actorspace_core::Route>| {};
            for _ in 0..k {
                let a = reg.create_actor(space, None).unwrap();
                reg.make_visible(a.into(), vec![path("srv")], space, None, &mut sink0)
                    .unwrap();
                replicas.push(a);
            }
            let n = 4_000u32;
            let mut counts: std::collections::HashMap<ActorId, u32> = Default::default();
            let pat = pattern("srv");
            for _ in 0..n {
                let mut sink = |to: ActorId, _: u64, _: Option<&actorspace_core::Route>| {
                    *counts.entry(to).or_insert(0) += 1;
                };
                reg.send(&pat, space, 1, &mut sink).unwrap();
            }
            let expected = n as f64 / k as f64;
            let chi2: f64 = replicas
                .iter()
                .map(|r| {
                    let c = counts.get(r).copied().unwrap_or(0) as f64;
                    (c - expected).powi(2) / expected
                })
                .sum();
            let min = replicas
                .iter()
                .map(|r| counts.get(r).copied().unwrap_or(0))
                .min()
                .unwrap();
            let max = replicas
                .iter()
                .map(|r| counts.get(r).copied().unwrap_or(0))
                .max()
                .unwrap();
            t.row(&[
                k.to_string(),
                name.into(),
                format!("{:.1}%", 100.0 * min as f64 / n as f64),
                format!("{:.1}%", 100.0 * max as f64 / n as f64),
                format!("{:.2}", chi2 / (k as f64 - 1.0).max(1.0)),
            ]);
        }
    }
    t.print();
    println!("(chi2/df ≈ 1 is consistent with uniform random; 0 is perfectly even)");
}

// ---------------------------------------------------------------- E5

fn e5_broadcast() {
    let mut t = Table::new(
        "E5 (§5.3): broadcast vs g explicit sends (sender-side call cost)",
        &[
            "group g",
            "broadcast call",
            "explicit loop",
            "sender advantage",
        ],
    );
    for g in [16usize, 256, 4096] {
        let sys = ActorSystem::new(Config {
            workers: 4,
            ..Config::default()
        });
        let space = sys.create_space(None).unwrap();
        let mut ids = Vec::new();
        for _ in 0..g {
            let a = sys.spawn(from_fn(|_, _| {}));
            sys.make_visible(a.id(), &path("node"), space, None)
                .unwrap();
            ids.push(a.leak());
        }
        sys.await_idle(Duration::from_secs(30));
        let pat = pattern("node");
        let reps = 20u32;
        let (_, d_bcast) = time_it(|| {
            for _ in 0..reps {
                sys.broadcast(&pat, space, Value::int(1), None).unwrap();
            }
        });
        sys.await_idle(Duration::from_secs(60));
        let (_, d_expl) = time_it(|| {
            for _ in 0..reps {
                for &id in &ids {
                    sys.send_to(id, Value::int(1));
                }
            }
        });
        sys.await_idle(Duration::from_secs(60));
        t.row(&[
            g.to_string(),
            fmt_dur(d_bcast / reps),
            fmt_dur(d_expl / reps),
            format!("{:.2}x", d_expl.as_secs_f64() / d_bcast.as_secs_f64()),
        ]);
        sys.shutdown();
    }
    t.print();
    println!("(plus: the broadcaster needs no membership list at all — the abstraction claim)");
}

// ---------------------------------------------------------------- E6

fn e6_unmatched() {
    let mut t = Table::new(
        "E6 (§5.6): unmatched-message policies (registry level, 10k unmatched sends)",
        &["policy", "total", "per send", "behavior"],
    );
    for (name, policy, behavior) in [
        ("discard", UnmatchedPolicy::Discard, "dropped"),
        ("suspend", UnmatchedPolicy::Suspend, "queued for wake"),
        ("error", UnmatchedPolicy::Error, "error to sender"),
    ] {
        let p = ManagerPolicy {
            unmatched_send: policy,
            ..Default::default()
        };
        let mut reg: Registry<u64> = Registry::new(p);
        let space = reg.create_space(None);
        let pat = pattern("ghost");
        let n = 10_000u32;
        let (_, d) = time_it(|| {
            for _ in 0..n {
                let mut sink = |_: ActorId, _: u64, _: Option<&actorspace_core::Route>| {};
                let _ = reg.send(&pat, space, 1, &mut sink);
            }
        });
        t.row(&[name.into(), fmt_dur(d), fmt_dur(d / n), behavior.into()]);
    }
    // Suspend + wake cycle.
    {
        let p = ManagerPolicy {
            unmatched_send: UnmatchedPolicy::Suspend,
            ..Default::default()
        };
        let mut reg: Registry<u64> = Registry::new(p);
        let space = reg.create_space(None);
        let a = reg.create_actor(space, None).unwrap();
        let n = 10_000u32;
        let pat = pattern("late");
        let mut delivered = 0u32;
        let (_, d) = time_it(|| {
            for _ in 0..n {
                let mut sink = |_: ActorId, _: u64, _: Option<&actorspace_core::Route>| {};
                reg.send(&pat, space, 1, &mut sink).unwrap();
            }
            let mut sink = |_: ActorId, _: u64, _: Option<&actorspace_core::Route>| {
                delivered += 1;
            };
            reg.make_visible(a.into(), vec![path("late")], space, None, &mut sink)
                .unwrap();
        });
        assert_eq!(delivered, n);
        t.row(&[
            "suspend+wake".into(),
            fmt_dur(d),
            fmt_dur(d / n),
            format!("{delivered} released by 1 arrival"),
        ]);
    }
    // Persistent exactly-once.
    {
        let p = ManagerPolicy {
            unmatched_broadcast: UnmatchedPolicy::Persistent,
            ..Default::default()
        };
        let mut reg: Registry<u64> = Registry::new(p);
        let space = reg.create_space(None);
        let n = 1_000u32;
        let mut delivered = 0u32;
        let (_, d) = time_it(|| {
            {
                let mut sink = |_: ActorId, _: u64, _: Option<&actorspace_core::Route>| {
                    delivered += 1;
                };
                reg.broadcast(&pattern("node"), space, 1, &mut sink)
                    .unwrap();
            }
            for _ in 0..n {
                let a = reg.create_actor(space, None).unwrap();
                let mut sink = |_: ActorId, _: u64, _: Option<&actorspace_core::Route>| {
                    delivered += 1;
                };
                reg.make_visible(a.into(), vec![path("node")], space, None, &mut sink)
                    .unwrap();
            }
        });
        assert_eq!(delivered, n);
        t.row(&[
            "persistent".into(),
            fmt_dur(d),
            fmt_dur(d / n),
            format!("{n} future arrivals, each exactly once"),
        ]);
    }
    t.print();
}

// ---------------------------------------------------------------- E7

fn e7_cycles() {
    let mut t = Table::new(
        "E7 (§5.7): cycle prevention — make_visible cost vs visibility-graph depth",
        &[
            "chain depth",
            "actor member (no check)",
            "space member (DAG check)",
            "cycle rejection",
        ],
    );
    for depth in [4usize, 16, 64, 256] {
        let build = || {
            let mut r: Registry<u64> = Registry::new(ManagerPolicy::default());
            let spaces: Vec<SpaceId> = (0..depth).map(|_| r.create_space(None)).collect();
            let mut sink = |_: ActorId, _: u64, _: Option<&actorspace_core::Route>| {};
            for w in spaces.windows(2) {
                r.make_visible(w[0].into(), vec![path("sub")], w[1], None, &mut sink)
                    .unwrap();
            }
            (r, spaces)
        };
        let reps = 500u32;
        // Actor member: no DAG check.
        let (mut r, spaces) = build();
        let top = *spaces.last().unwrap();
        let actors: Vec<ActorId> = (0..reps)
            .map(|_| r.create_actor(top, None).unwrap())
            .collect();
        let (_, d_actor) = time_it(|| {
            let mut sink = |_: ActorId, _: u64, _: Option<&actorspace_core::Route>| {};
            for a in &actors {
                r.make_visible((*a).into(), vec![path("x")], top, None, &mut sink)
                    .unwrap();
            }
        });
        // Space member: full reachability walk.
        let (mut r, spaces) = build();
        let head = *spaces.last().unwrap();
        let extras: Vec<SpaceId> = (0..reps).map(|_| r.create_space(None)).collect();
        let (_, d_space) = time_it(|| {
            let mut sink = |_: ActorId, _: u64, _: Option<&actorspace_core::Route>| {};
            for e in &extras {
                r.make_visible(head.into(), vec![path("x")], *e, None, &mut sink)
                    .unwrap();
            }
        });
        // Cycle rejection (worst case walk).
        let (mut r, spaces) = build();
        let (_, d_reject) = time_it(|| {
            let mut sink = |_: ActorId, _: u64, _: Option<&actorspace_core::Route>| {};
            for _ in 0..reps {
                let err = r
                    .make_visible(
                        (*spaces.last().unwrap()).into(),
                        vec![path("loop")],
                        spaces[0],
                        None,
                        &mut sink,
                    )
                    .unwrap_err();
                assert!(matches!(err, actorspace_core::Error::WouldCycle { .. }));
            }
        });
        t.row(&[
            depth.to_string(),
            fmt_dur(d_actor / reps),
            fmt_dur(d_space / reps),
            fmt_dur(d_reject / reps),
        ]);
    }
    t.print();
}

// ---------------------------------------------------------------- E8

fn e8_linda() {
    let mut t = Table::new(
        "E8 (§3): request/reply — ActorSpace push vs Linda tuple-space polling (2000 reqs)",
        &["workers", "actorspace", "linda", "winner"],
    );
    let requests = 2_000u64;
    for workers in [1usize, 4, 16] {
        // ActorSpace.
        let (_, d_as) = time_it(|| {
            let sys = ActorSystem::new(Config {
                workers: 4,
                ..Config::default()
            });
            let space = sys.create_space(None).unwrap();
            let (inbox, rx) = sys.inbox();
            for _ in 0..workers {
                let w = sys.spawn(from_fn(move |ctx, msg| {
                    let n = msg.body.as_int().unwrap();
                    ctx.send_addr(inbox, Value::int(n + 1));
                }));
                sys.make_visible(w.id(), &path("svc"), space, None).unwrap();
                w.leak();
            }
            let pat = pattern("svc");
            for i in 0..requests {
                sys.send_pattern(&pat, space, Value::int(i as i64), None)
                    .unwrap();
            }
            for _ in 0..requests {
                rx.recv_timeout(Duration::from_secs(60)).unwrap();
            }
            sys.shutdown();
        });
        // Linda.
        let (_, d_li) = time_it(|| {
            let ts = Arc::new(TupleSpace::new());
            let mut handles = Vec::new();
            for _ in 0..workers {
                let ts = ts.clone();
                handles.push(std::thread::spawn(move || {
                    let req = TuplePattern::new([exact("req"), wild()]);
                    loop {
                        let Some(tup) = ts.in_(&req, Duration::from_secs(60)) else {
                            return;
                        };
                        let Field::Int(n) = tup[1] else { continue };
                        if n < 0 {
                            return;
                        }
                        ts.out(vec![Field::str("rep"), Field::Int(n + 1)]);
                    }
                }));
            }
            for i in 0..requests {
                ts.out(vec![Field::str("req"), Field::Int(i as i64)]);
            }
            let rep = TuplePattern::new([exact("rep"), wild()]);
            for _ in 0..requests {
                ts.in_(&rep, Duration::from_secs(60)).unwrap();
            }
            for _ in 0..workers {
                ts.out(vec![Field::str("req"), Field::Int(-1)]);
            }
            for h in handles {
                h.join().unwrap();
            }
        });
        let winner = if d_as < d_li { "actorspace" } else { "linda" };
        t.row(&[
            workers.to_string(),
            fmt_dur(d_as),
            fmt_dur(d_li),
            winner.into(),
        ]);
    }
    t.print();
    println!(
        "(plus the §3 security property: Linda readers can steal any tuple — see baselines tests)"
    );
}

// ---------------------------------------------------------------- E9

fn e9_tsp() {
    let mut t = Table::new(
        "E9 (§5.3): TSP branch & bound, 12 cities x 3 instances, loose initial bound (2x greedy)",
        &[
            "workers",
            "config",
            "nodes explored (sum)",
            "wall (sum)",
            "pruning",
        ],
    );
    let instances: Vec<tsp::Instance> = [5u64, 7, 11]
        .iter()
        .map(|&s| tsp::Instance::random(12, s))
        .collect();
    let exact_costs: Vec<i64> = instances.iter().map(|i| i.held_karp()).collect();
    for workers in [2usize, 4] {
        let mut shared_nodes = 0u64;
        let mut lone_nodes = 0u64;
        let mut shared_wall = Duration::ZERO;
        let mut lone_wall = Duration::ZERO;
        for (inst, &exact_cost) in instances.iter().zip(&exact_costs) {
            let shared = tsp::solve_actorspace_with(inst, workers, true, 2.0);
            let lone = tsp::solve_actorspace_with(inst, workers, false, 2.0);
            assert_eq!(shared.best, exact_cost);
            assert_eq!(lone.best, exact_cost);
            shared_nodes += shared.nodes_explored;
            lone_nodes += lone.nodes_explored;
            shared_wall += shared.wall;
            lone_wall += lone.wall;
        }
        let ratio = lone_nodes as f64 / shared_nodes.max(1) as f64;
        t.row(&[
            workers.to_string(),
            "broadcast bounds".into(),
            shared_nodes.to_string(),
            fmt_dur(shared_wall),
            format!("{ratio:.2}x fewer"),
        ]);
        t.row(&[
            workers.to_string(),
            "no sharing".into(),
            lone_nodes.to_string(),
            fmt_dur(lone_wall),
            "-".into(),
        ]);
    }
    t.print();
    println!("(optimum verified against Held–Karp on every run)");
}

// ---------------------------------------------------------------- E10

fn e10_gc() {
    let mut t = Table::new(
        "E10 (§5.5): garbage collection, 100 spaces x 50 actors",
        &["live fraction", "collected", "survivors", "pass time"],
    );
    for live in [0.0f64, 0.5, 1.0] {
        let mut r: Registry<u64> = Registry::new(ManagerPolicy::default());
        let mut sink = |_: ActorId, _: u64, _: Option<&actorspace_core::Route>| {};
        for s in 0..100usize {
            let space = r.create_space(None);
            if (s as f64) < 100.0 * live {
                r.make_visible(
                    space.into(),
                    vec![path(&format!("s{s}"))],
                    ROOT_SPACE,
                    None,
                    &mut sink,
                )
                .unwrap();
            }
            for a in 0..50usize {
                let actor = r.create_actor(space, None).unwrap();
                r.make_visible(
                    actor.into(),
                    vec![path(&format!("a{a}"))],
                    space,
                    None,
                    &mut sink,
                )
                .unwrap();
            }
        }
        let (report, d) = time_it(|| r.collect_garbage(&|_| Vec::new()));
        t.row(&[
            format!("{:.0}%", live * 100.0),
            format!(
                "{} actors, {} spaces",
                report.collected_actors.len(),
                report.collected_spaces.len()
            ),
            format!(
                "{} actors, {} spaces",
                report.live_actors, report.live_spaces
            ),
            fmt_dur(d),
        ]);
    }
    t.print();
}

// ---------------------------------------------------------------- E11

fn e11_repository() {
    let mut t = Table::new(
        "E11 (§1): repository lookup latency vs library size (per query)",
        &[
            "library",
            "pattern exact",
            "name-server exact",
            "pattern versions",
            "package scan",
        ],
    );
    for size in [100usize, 1_000, 10_000, 100_000] {
        let repository = repo::build_repository(size);
        let ns = repo::build_name_server(&repository);
        let reps = 200u32;
        let (_, d_pe) = time_it(|| {
            for _ in 0..reps {
                assert_eq!(repo::lookup_exact(&repository, 0, 1, 2).len(), 1);
            }
        });
        let (_, d_ne) = time_it(|| {
            for _ in 0..reps {
                assert!(repo::ns_lookup_exact(&ns, 0, 1, 2).is_some());
            }
        });
        let (_, d_pv) = time_it(|| {
            for _ in 0..reps {
                repo::lookup_versions(&repository, 0, 1);
            }
        });
        let (_, d_ps) = time_it(|| {
            for _ in 0..reps {
                repo::lookup_package(&repository, 0);
            }
        });
        t.row(&[
            size.to_string(),
            fmt_dur(d_pe / reps),
            fmt_dur(d_ne / reps),
            fmt_dur(d_pv / reps),
            fmt_dur(d_ps / reps),
        ]);
    }
    t.print();
    println!("(the name server answers only exact names; wildcard queries need the client to know the whole taxonomy)");

    // A footnote measurement: registering a late class wakes waiting queries.
    let ns = NameServer::new();
    ns.register(atom("x"), 1);
    let _ = ns.lookup(atom("x"));
}

// ---------------------------------------------------------------- E12

fn e12_attr_index() {
    let mut t = Table::new(
        "E12 (ablation): literal-pattern resolution — inverted index vs NFA walk (per query)",
        &[
            "visible actors",
            "exact indexed",
            "exact unindexed",
            "miss indexed",
            "wildcard",
        ],
    );
    for n in [1_000usize, 10_000, 100_000] {
        let build = |use_index: bool| {
            let policy = ManagerPolicy {
                use_literal_index: use_index,
                ..Default::default()
            };
            let mut reg: Registry<u64> = Registry::new(policy);
            let space = reg.create_space(None);
            let mut sink = |_: ActorId, _: u64, _: Option<&actorspace_core::Route>| {};
            for i in 0..n {
                let a = reg.create_actor(space, None).unwrap();
                reg.make_visible(
                    a.into(),
                    vec![path(&format!("srv/class-{}/inst-{}", i % 97, i))],
                    space,
                    None,
                    &mut sink,
                )
                .unwrap();
            }
            (reg, space)
        };
        let (indexed, si) = build(true);
        let (unindexed, su) = build(false);
        let exact = Pattern::parse("srv/class-1/inst-1").unwrap();
        let missing = Pattern::parse("srv/class-1/inst-absent").unwrap();
        let wildcard = pattern("srv/class-1/*");
        let reps = 500u32;
        let (_, d_ie) = time_it(|| {
            for _ in 0..reps {
                assert_eq!(indexed.resolve(&exact, si).unwrap().len(), 1);
            }
        });
        let (_, d_ue) = time_it(|| {
            for _ in 0..reps.min(100) {
                assert_eq!(unindexed.resolve(&exact, su).unwrap().len(), 1);
            }
        });
        let (_, d_miss) = time_it(|| {
            for _ in 0..reps {
                assert!(indexed.resolve(&missing, si).unwrap().is_empty());
            }
        });
        let (_, d_wild) = time_it(|| {
            for _ in 0..reps.min(100) {
                indexed.resolve(&wildcard, si).unwrap();
            }
        });
        t.row(&[
            n.to_string(),
            fmt_dur(d_ie / reps),
            fmt_dur(d_ue / reps.min(100)),
            fmt_dur(d_miss / reps),
            fmt_dur(d_wild / reps.min(100)),
        ]);
    }
    t.print();
    println!("(wildcard queries keep the NFA walk — expressiveness is unchanged; see prop test literal_index_matches_nfa_walk)");
}

// ---------------------------------------------------------------- E13

fn e13_tracing_overhead() {
    // The observability tax. The E2 pattern-send workload runs three
    // times against the same binary: tracing disabled (metrics only),
    // the shipping default of 1-in-64 sampling, and full tracing. Each
    // mode takes the best of three passes to shave scheduler noise; the
    // sampled overhead against "off" is the figure EXPERIMENTS.md bounds
    // at 5%. The JSON report embeds the sampled run's metric snapshot
    // (match latency, suspension dwell) plus a snapshot from a lossy
    // 2-node failover run (reroute latency, retransmit counts), so the
    // numbers travel with the timings.
    let mut t = Table::new(
        "E13 (obs): message-lifecycle tracing overhead, single-node pattern sends",
        &["mode", "n", "total", "per op", "overhead"],
    );
    let n = 50_000u64;
    let run_mode = |cfg: ObsConfig| -> (Duration, Arc<Obs>) {
        let mut best = Duration::MAX;
        let mut kept = None;
        for _ in 0..3 {
            let obs = Obs::shared(cfg);
            let sys = ActorSystem::new(Config {
                workers: 2,
                obs: Some(obs.clone()),
                ..Config::default()
            });
            let space = sys.create_space(None).unwrap();
            let a = sys.spawn(from_fn(|_, _| {}));
            sys.make_visible(a.id(), &path("srv/x"), space, None)
                .unwrap();
            let pat = pattern("srv/*");
            for _ in 0..2_000 {
                sys.send_pattern(&pat, space, Value::int(1), None).unwrap();
            }
            assert!(sys.await_idle(Duration::from_secs(60)));
            let (_, d) = time_it(|| {
                for _ in 0..n {
                    sys.send_pattern(&pat, space, Value::int(1), None).unwrap();
                }
                assert!(sys.await_idle(Duration::from_secs(60)));
            });
            sys.shutdown();
            if d < best {
                best = d;
                kept = Some(obs);
            }
        }
        (best, kept.unwrap())
    };
    let (base, _) = run_mode(ObsConfig::off());
    let (sampled, obs_sampled) = run_mode(ObsConfig::default());
    let (full, _) = run_mode(ObsConfig::all());
    let pct = |d: Duration| 100.0 * (d.as_secs_f64() - base.as_secs_f64()) / base.as_secs_f64();
    for (mode, d) in [
        ("tracing off", base),
        ("sampled 1/64 (default)", sampled),
        ("full (every send)", full),
    ] {
        t.row(&[
            mode.into(),
            n.to_string(),
            fmt_dur(d),
            fmt_dur(d / n as u32),
            if d == base {
                "baseline".into()
            } else {
                format!("{:+.2}%", pct(d))
            },
        ]);
    }

    // A short lossy failover run so the embedded snapshot carries the
    // cluster-side histograms and counters too.
    let cluster_obs = Obs::shared(ObsConfig::all());
    {
        let c = Cluster::new(ClusterConfig {
            nodes: 2,
            data_link: LinkConfig::lossy(0.10, 0.05, 42),
            failure: FailureConfig::fast(),
            obs: Some(cluster_obs.clone()),
            ..ClusterConfig::default()
        });
        let space = c.node(0).create_space(None);
        let w = c.node(1).spawn(from_fn(|_, _| {}));
        c.node(1)
            .make_visible(w, &path("svc"), space, None)
            .unwrap();
        assert!(c.await_coherence(Duration::from_secs(20)));
        for i in 0..200 {
            c.node(0)
                .send_pattern(&pattern("svc"), space, Value::int(i))
                .unwrap();
        }
        c.kill_node(1);
        let local = c.node(0).spawn(from_fn(|_, _| {}));
        c.node(0)
            .make_visible(local, &path("svc"), space, None)
            .unwrap();
        c.await_quiescence(Duration::from_secs(20));
        c.shutdown();
    }

    t.meta_json("overhead_pct_sampled", &format!("{:.2}", pct(sampled)));
    t.meta_json("overhead_pct_full", &format!("{:.2}", pct(full)));
    t.meta_json("snapshot_single_node", &obs_sampled.snapshot().to_json());
    t.meta_json(
        "snapshot_failover_cluster",
        &cluster_obs.snapshot().to_json(),
    );
    t.print();
    let reroute = cluster_obs
        .snapshot()
        .histogram_total(names::NET_FAILOVER_REROUTE_NS);
    println!(
        "(cluster run: {} failovers rerouted, p50 {:.2}ms; {} retransmits)",
        reroute.count,
        reroute.p50 as f64 / 1e6,
        cluster_obs.snapshot().counter_total(names::NET_RETRANSMITS),
    );
    println!("json: {}", t.to_json());
}

// ---------------------------------------------------------------- E14

fn e14_shard_contention() {
    // The sharded coordinator's reason to exist: under the seed design
    // every send serialises on one registry-wide mutex; per-space shards
    // let sends into disjoint spaces proceed concurrently. Each thread
    // hammers its own private space and sends every 16th message through
    // one shared space (the cross-shard path), against (a) the single-lock
    // reference behind a `Mutex` — the seed coordinator shape — and
    // (b) `ShardedRegistry` called through `&self`.
    //
    // E14_QUICK=1 shrinks the run for CI. On a 1-core runner the two
    // variants should be ~at parity (no parallelism to win); the sharded
    // column must simply not be meaningfully slower.
    let quick = std::env::var("E14_QUICK").is_ok();
    let per_thread: u64 = if quick { 4_000 } else { 40_000 };
    let mut t = Table::new(
        "E14 (sharding): send throughput, global lock vs per-space shards",
        &[
            "threads",
            "ops/thread",
            "global lock",
            "sharded",
            "sharded/global",
        ],
    );

    let policy = ManagerPolicy {
        unmatched_send: UnmatchedPolicy::Discard,
        unmatched_broadcast: UnmatchedPolicy::Discard,
        selection_seed: Some(7),
        ..ManagerPolicy::default()
    };

    for threads in [1usize, 2, 4, 8] {
        // -- (a) the seed shape: one mutex around the whole registry.
        let d_global = {
            let reg = Arc::new(actorspace_lockcheck::Mutex::new(
                actorspace_lockcheck::LockClass::Other("bench.global_registry"),
                Registry::<u64>::new(policy.clone()),
            ));
            let (privates, shared) = {
                let mut r = reg.lock();
                let shared = r.create_space(None);
                let mut privates = Vec::new();
                let mut sink = |_: ActorId, _: u64, _: Option<&actorspace_core::Route>| {};
                for _ in 0..threads {
                    let s = r.create_space(None);
                    let a = r.create_actor(s, None).unwrap();
                    r.make_visible(a.into(), vec![path("worker")], s, None, &mut sink)
                        .unwrap();
                    r.make_visible(
                        a.into(),
                        vec![path("shared/worker")],
                        shared,
                        None,
                        &mut sink,
                    )
                    .unwrap();
                    privates.push(s);
                }
                (privates, shared)
            };
            let own = pattern("worker");
            let cross = pattern("shared/*");
            let (_, d) = time_it(|| {
                std::thread::scope(|scope| {
                    for &space in privates.iter().take(threads) {
                        let reg = Arc::clone(&reg);
                        let (own, cross) = (own.clone(), cross.clone());
                        scope.spawn(move || {
                            let mut sink =
                                |_: ActorId, _: u64, _: Option<&actorspace_core::Route>| {};
                            for i in 0..per_thread {
                                let mut r = reg.lock();
                                if i % 16 == 0 {
                                    r.send(&cross, shared, i, &mut sink).unwrap();
                                } else {
                                    r.send(&own, space, i, &mut sink).unwrap();
                                }
                            }
                        });
                    }
                });
            });
            d
        };

        // -- (b) per-space shards, no outer lock.
        let d_sharded = {
            let reg = Arc::new(ShardedRegistry::<u64>::new(policy.clone()));
            let shared = reg.create_space(None);
            let mut privates = Vec::new();
            let mut sink = |_: ActorId, _: u64, _: Option<&actorspace_core::Route>| {};
            for _ in 0..threads {
                let s = reg.create_space(None);
                let a = reg.create_actor(s, None).unwrap();
                reg.make_visible(a.into(), vec![path("worker")], s, None, &mut sink)
                    .unwrap();
                reg.make_visible(
                    a.into(),
                    vec![path("shared/worker")],
                    shared,
                    None,
                    &mut sink,
                )
                .unwrap();
                privates.push(s);
            }
            let own = pattern("worker");
            let cross = pattern("shared/*");
            let (_, d) = time_it(|| {
                std::thread::scope(|scope| {
                    for &space in privates.iter().take(threads) {
                        let reg = Arc::clone(&reg);
                        let (own, cross) = (own.clone(), cross.clone());
                        scope.spawn(move || {
                            let mut sink =
                                |_: ActorId, _: u64, _: Option<&actorspace_core::Route>| {};
                            for i in 0..per_thread {
                                if i % 16 == 0 {
                                    reg.send(&cross, shared, i, &mut sink).unwrap();
                                } else {
                                    reg.send(&own, space, i, &mut sink).unwrap();
                                }
                            }
                        });
                    }
                });
            });
            d
        };

        t.row(&[
            threads.to_string(),
            per_thread.to_string(),
            fmt_dur(d_global),
            fmt_dur(d_sharded),
            format!("{:.2}x", d_sharded.as_secs_f64() / d_global.as_secs_f64()),
        ]);
    }
    t.print();
    println!(
        "(cores available: {}; on a 1-core runner expect ~parity — the sharded win \
         needs real parallelism, the invariant is that sharding is never meaningfully slower)",
        std::thread::available_parallelism().map_or(1, |n| n.get())
    );
    println!("json: {}", t.to_json());
}

// ---------------------------------------------------------------- E15

fn e15_obs_stream_overhead() {
    // The remote-observability tax. The E13 cluster workload (node 0
    // pattern-sends at a worker on node 1, loss-free links) runs in three
    // modes against the same binary: snapshot streaming disabled, every
    // node publishing delta frames at the default-ish 50ms period with an
    // active remote subscriber, and an aggressive 10ms period. The 50ms
    // overhead against "off" is the figure EXPERIMENTS.md bounds at 5%.
    // The streamed ClusterViews must also converge on the registry's real
    // delivery totals — an overhead number for a view that lost data
    // would be meaningless.
    //
    // Measurement protocol, tuned for a noisy shared 1-core runner where
    // machine-wide load swings dwarf a percent-level effect:
    //
    // * All three clusters stay booted for the whole experiment and the
    //   timed work is interleaved in short segments (off, 50ms, 10ms,
    //   off, …), so adjacent segments see the same host load. An idle
    //   cluster's background cost (parked workers, a publisher ticking
    //   microseconds of snapshot work) is constant across every segment.
    // * Each segment ends at a delivery-count barrier, not at
    //   `await_quiescence`: every send matches the one worker exactly
    //   once, so node 1's delivery counter hitting `before + seg` marks
    //   the segment done at yield granularity, where the quiescence
    //   protocol's coarse stability timers would bury the effect.
    // * The reported overhead is the median over rounds of the
    //   within-round ratio against that round's "off" segment — the
    //   median sheds rounds a co-tenant load spike split in half.
    //
    // E15_QUICK=1 shrinks the run for CI.
    let quick = std::env::var("E15_QUICK").is_ok();
    let seg: u64 = if quick { 1_000 } else { 2_000 };
    let rounds = if quick { 5 } else { 60 };
    let n = seg * rounds as u64;
    let mut t = Table::new(
        "E15 (obs): delta snapshot streaming overhead, 2-node pattern sends",
        &["mode", "n", "total", "per op", "overhead"],
    );

    const MODES: [Option<Duration>; 3] = [
        None,
        Some(Duration::from_millis(50)),
        Some(Duration::from_millis(10)),
    ];
    let setups: Vec<_> = MODES
        .iter()
        .map(|&publish| {
            let obs = Obs::shared(ObsConfig::default());
            let c = Cluster::new(ClusterConfig {
                nodes: 2,
                obs: Some(obs.clone()),
                obs_publish: publish,
                ..ClusterConfig::default()
            });
            let view = publish.map(|_| c.observe());
            let space = c.node(0).create_space(None);
            let w = c.node(1).spawn(from_fn(|_, _| {}));
            c.node(1)
                .make_visible(w, &path("svc"), space, None)
                .unwrap();
            assert!(c.await_coherence(Duration::from_secs(20)));
            for _ in 0..500 {
                c.node(0)
                    .send_pattern(&pattern("svc"), space, Value::int(1))
                    .unwrap();
            }
            assert!(c.await_quiescence(Duration::from_secs(60)));
            let delivered = obs.metrics.counter(names::RT_DELIVERIES, 1);
            (c, obs, view, space, delivered)
        })
        .collect();

    let pat = pattern("svc");
    let mut totals = [Duration::ZERO; 3];
    let mut ratios: [Vec<f64>; 2] = [Vec::new(), Vec::new()];
    for _ in 0..rounds {
        let mut round = [Duration::ZERO; 3];
        for (mi, (c, _, _, space, delivered)) in setups.iter().enumerate() {
            let before = delivered.get();
            let (_, d) = time_it(|| {
                for i in 0..seg {
                    c.node(0)
                        .send_pattern(&pat, *space, Value::int(i as i64))
                        .unwrap();
                }
                while delivered.get() < before + seg {
                    std::thread::yield_now();
                }
            });
            round[mi] = d;
            totals[mi] += d;
        }
        for mi in 1..3 {
            ratios[mi - 1].push(round[mi].as_secs_f64() / round[0].as_secs_f64());
        }
    }

    // Convergence + frame counts, then teardown.
    let mut frames = [0u64; 3];
    for (mi, (c, obs, view, _, _)) in setups.iter().enumerate() {
        assert!(c.await_quiescence(Duration::from_secs(60)));
        if let Some(view) = view {
            let wanted = obs.metrics.counter(names::RT_DELIVERIES, 1).get();
            let deadline = Instant::now() + Duration::from_secs(20);
            loop {
                if view.merged().counter(names::RT_DELIVERIES, 1) == Some(wanted) {
                    break;
                }
                assert!(
                    Instant::now() < deadline,
                    "the {:?} view failed to converge",
                    MODES[mi]
                );
                std::thread::sleep(Duration::from_millis(5));
            }
            frames[mi] = view.peers().iter().map(|p| p.frames_applied).sum::<u64>();
        }
        c.shutdown();
    }

    let median_pct = |v: &mut Vec<f64>| {
        v.sort_by(|a, b| a.partial_cmp(b).expect("finite ratio"));
        100.0 * (v[v.len() / 2] - 1.0)
    };
    let pct50 = median_pct(&mut ratios[0]);
    let pct10 = median_pct(&mut ratios[1]);
    let [_, frames50, frames10] = frames;
    for (mi, (mode, pct)) in [
        ("streaming off", None),
        ("publish every 50ms", Some(pct50)),
        ("publish every 10ms", Some(pct10)),
    ]
    .into_iter()
    .enumerate()
    {
        t.row(&[
            mode.into(),
            n.to_string(),
            fmt_dur(totals[mi]),
            fmt_dur(totals[mi] / n as u32),
            match pct {
                None => "baseline".into(),
                Some(p) => format!("{p:+.2}%"),
            },
        ]);
    }
    t.meta_json("overhead_pct_50ms", &format!("{pct50:.2}"));
    t.meta_json("overhead_pct_10ms", &format!("{pct10:.2}"));
    t.meta_json("frames_applied_50ms", &frames50.to_string());
    t.meta_json("frames_applied_10ms", &frames10.to_string());
    t.print();
    println!(
        "(both streamed views converged on the true per-node delivery totals; \
         {frames50} frames applied at 50ms, {frames10} at 10ms)"
    );
    println!("json: {}", t.to_json());
}
