//! The Figure 1 dynamic process pool as a measurable workload (E1).

use std::sync::atomic::{AtomicUsize, Ordering};
use std::sync::{mpsc, Arc};
use std::time::{Duration, Instant};

use actorspace_atoms::path;
use actorspace_core::SpaceId;
use actorspace_pattern::Pattern;
use actorspace_runtime::{ActorSystem, Behavior, Config, Ctx, Message, Value};

/// Parameters for one pool run.
#[derive(Debug, Clone)]
pub struct PoolParams {
    /// Total range of work items.
    pub range: i64,
    /// Below this size a job is computed rather than split.
    pub grain: i64,
    /// Workers present at the start.
    pub initial_workers: usize,
    /// Workers that join mid-run.
    pub late_workers: usize,
    /// When the late workers join.
    pub late_after: Duration,
    /// Per-item work multiplier (iterations of the mixing loop).
    pub work_per_item: u32,
    /// Scheduler threads.
    pub os_threads: usize,
}

impl Default for PoolParams {
    fn default() -> Self {
        PoolParams {
            range: 1 << 18,
            grain: 1024,
            initial_workers: 4,
            late_workers: 0,
            late_after: Duration::from_millis(5),
            work_per_item: 16,
            os_threads: 4,
        }
    }
}

/// What one run produced.
#[derive(Debug, Clone)]
pub struct PoolOutcome {
    /// Wall-clock time to complete the whole job.
    pub wall: Duration,
    /// Verified result of the computation.
    pub result: i64,
    /// Leaf jobs computed by each worker, initial workers first.
    pub distribution: Vec<usize>,
}

fn leaf_item(x: i64, iters: u32) -> i64 {
    let mut h = x as u64 ^ 0x9e37_79b9_7f4a_7c15;
    for _ in 0..iters {
        h = h.wrapping_mul(0xff51_afd7_ed55_8ccd);
        h ^= h >> 33;
    }
    (h % 1000) as i64
}

struct PoolWorker {
    pool: SpaceId,
    grain: i64,
    iters: u32,
    computed: Arc<AtomicUsize>,
}

impl Behavior for PoolWorker {
    fn receive(&mut self, ctx: &mut Ctx<'_>, msg: Message) {
        let parts = msg.body.as_list().expect("job list");
        let lo = parts[0].as_int().unwrap();
        let hi = parts[1].as_int().unwrap();
        let collector = parts[2].as_addr().unwrap();
        if hi - lo > self.grain {
            let mid = (lo + hi) / 2;
            for (a, b) in [(lo, mid), (mid, hi)] {
                ctx.send_pattern(
                    &Pattern::any(),
                    self.pool,
                    Value::list([Value::int(a), Value::int(b), Value::Addr(collector)]),
                )
                .expect("resend into pool");
            }
        } else {
            let sum: i64 = (lo..hi).map(|x| leaf_item(x, self.iters)).sum();
            self.computed.fetch_add(1, Ordering::Relaxed);
            ctx.send_addr(
                collector,
                Value::list([Value::int(sum), Value::int(hi - lo)]),
            );
        }
    }
}

/// Runs the pool workload and reports timing plus the work distribution.
pub fn run_pool(params: &PoolParams) -> PoolOutcome {
    let system = ActorSystem::new(Config {
        workers: params.os_threads.clamp(1, 8),
        ..Config::default()
    });
    let pool = system.create_space(None).expect("create pool");
    let mut counters: Vec<Arc<AtomicUsize>> = Vec::new();

    let add_worker = |idx: usize, counters: &mut Vec<Arc<AtomicUsize>>| {
        let computed = Arc::new(AtomicUsize::new(0));
        counters.push(computed.clone());
        let w = system.spawn(PoolWorker {
            pool,
            grain: params.grain,
            iters: params.work_per_item,
            computed,
        });
        system
            .make_visible(w.id(), &path(&format!("proc/{idx}")), pool, None)
            .expect("make worker visible");
        w.leak();
    };
    for i in 0..params.initial_workers {
        add_worker(i, &mut counters);
    }

    let (done_tx, done_rx) = mpsc::channel::<i64>();
    let total = params.range;
    let collector = {
        let mut acc = 0i64;
        let mut covered = 0i64;
        system.spawn(actorspace_runtime::from_fn(move |_ctx, msg| {
            let parts = msg.body.as_list().unwrap();
            acc += parts[0].as_int().unwrap();
            covered += parts[1].as_int().unwrap();
            if covered == total {
                let _ = done_tx.send(acc);
            }
        }))
    };

    let t0 = Instant::now();
    system
        .send_pattern(
            &Pattern::any(),
            pool,
            Value::list([
                Value::int(0),
                Value::int(params.range),
                Value::Addr(collector.id()),
            ]),
            None,
        )
        .expect("kick off job");

    if params.late_workers > 0 {
        std::thread::sleep(params.late_after);
        for i in 0..params.late_workers {
            add_worker(params.initial_workers + i, &mut counters);
        }
    }

    let result = done_rx
        .recv_timeout(Duration::from_secs(300))
        .expect("pool completes");
    let wall = t0.elapsed();
    let distribution = counters.iter().map(|c| c.load(Ordering::Relaxed)).collect();
    system.shutdown();
    PoolOutcome {
        wall,
        result,
        distribution,
    }
}

/// The sequential reference computation, for verification and speedup
/// baselines.
pub fn sequential(params: &PoolParams) -> i64 {
    (0..params.range)
        .map(|x| leaf_item(x, params.work_per_item))
        .sum()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn pool_computes_the_right_answer() {
        let params = PoolParams {
            range: 1 << 14,
            ..PoolParams::default()
        };
        let out = run_pool(&params);
        assert_eq!(out.result, sequential(&params));
        assert_eq!(out.distribution.len(), params.initial_workers);
        let leafs: usize = out.distribution.iter().sum();
        assert_eq!(leafs as i64, params.range / params.grain);
    }

    #[test]
    fn work_is_distributed_not_centralized() {
        let params = PoolParams {
            range: 1 << 16,
            initial_workers: 4,
            ..PoolParams::default()
        };
        let out = run_pool(&params);
        let total: usize = out.distribution.iter().sum();
        for (i, &n) in out.distribution.iter().enumerate() {
            assert!(
                n > total / 20,
                "worker {i} got only {n}/{total} leaf jobs — a master bottleneck"
            );
        }
    }

    #[test]
    fn late_workers_participate() {
        // Heavy enough per-item work that the job is guaranteed to still be
        // running when the late workers join, debug or release.
        let params = PoolParams {
            range: 1 << 15,
            grain: 256,
            initial_workers: 2,
            late_workers: 2,
            late_after: Duration::from_millis(5),
            work_per_item: 2048,
            ..PoolParams::default()
        };
        let out = run_pool(&params);
        assert_eq!(out.result, sequential(&params));
        let late: usize = out.distribution[2..].iter().sum();
        assert!(
            late > 0,
            "late workers must absorb some work: {:?}",
            out.distribution
        );
    }
}
