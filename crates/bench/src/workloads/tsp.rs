//! Branch-and-bound travelling salesman over ActorSpace — the paper's
//! §5.3 motivating example for `broadcast`:
//!
//! "For instance, in search problems such as the Traveling Salesman, a new
//! lower bound can be broadcast to all nodes participating in the search
//! for the shortest route."
//!
//! Search workers live in an actorSpace; whenever one improves the
//! incumbent tour it *broadcasts* the new bound to every visible searcher,
//! which prunes their remaining subtrees. The no-sharing baseline runs the
//! identical search without the broadcast — experiment E9 compares nodes
//! explored and wall time.
//!
//! Correctness is checked against an exact Held–Karp dynamic program.

use std::sync::mpsc;
use std::sync::Arc;
use std::time::{Duration, Instant};

use actorspace_atoms::path;
use actorspace_core::{ActorId, SpaceId};
use actorspace_pattern::pattern;
use actorspace_runtime::{ActorSystem, Behavior, Config, Ctx, Message, Value};
use rand::rngs::SmallRng;
use rand::{Rng, SeedableRng};

/// A TSP instance: symmetric integer distances.
#[derive(Debug, Clone)]
pub struct Instance {
    /// Number of cities.
    pub n: usize,
    /// `dist[i][j]`, symmetric, zero diagonal.
    pub dist: Vec<Vec<i64>>,
}

impl Instance {
    /// Random Euclidean instance: `n` points on a 1000×1000 grid.
    pub fn random(n: usize, seed: u64) -> Instance {
        let mut rng = SmallRng::seed_from_u64(seed);
        let pts: Vec<(f64, f64)> = (0..n)
            .map(|_| (rng.gen::<f64>() * 1000.0, rng.gen::<f64>() * 1000.0))
            .collect();
        let mut dist = vec![vec![0i64; n]; n];
        for i in 0..n {
            for j in 0..n {
                let dx = pts[i].0 - pts[j].0;
                let dy = pts[i].1 - pts[j].1;
                dist[i][j] = ((dx * dx + dy * dy).sqrt()) as i64;
            }
        }
        Instance { n, dist }
    }

    /// Exact optimum by Held–Karp dynamic programming (n ≤ 20).
    #[allow(clippy::needless_range_loop)] // index-form DP reads clearer here
    pub fn held_karp(&self) -> i64 {
        let n = self.n;
        assert!(
            (2..=20).contains(&n),
            "Held–Karp is exponential; keep n ≤ 20"
        );
        let full = 1usize << n;
        const INF: i64 = i64::MAX / 4;
        // dp[mask][last]: shortest path starting at 0, visiting `mask`,
        // ending at `last`. City 0 is always in the mask.
        let mut dp = vec![vec![INF; n]; full];
        dp[1][0] = 0;
        for mask in 1..full {
            if mask & 1 == 0 {
                continue;
            }
            for last in 0..n {
                if mask & (1 << last) == 0 || dp[mask][last] >= INF {
                    continue;
                }
                let cur = dp[mask][last];
                for next in 1..n {
                    if mask & (1 << next) != 0 {
                        continue;
                    }
                    let nm = mask | (1 << next);
                    let cand = cur + self.dist[last][next];
                    if cand < dp[nm][next] {
                        dp[nm][next] = cand;
                    }
                }
            }
        }
        (1..n)
            .map(|last| dp[full - 1][last] + self.dist[last][0])
            .min()
            .expect("n >= 2")
    }

    /// A greedy nearest-neighbour tour cost — the initial incumbent.
    pub fn greedy(&self) -> i64 {
        let n = self.n;
        let mut visited = vec![false; n];
        visited[0] = true;
        let mut cur = 0usize;
        let mut cost = 0i64;
        for _ in 1..n {
            let next = (0..n)
                .filter(|&j| !visited[j])
                .min_by_key(|&j| self.dist[cur][j])
                .expect("unvisited city remains");
            cost += self.dist[cur][next];
            visited[next] = true;
            cur = next;
        }
        cost + self.dist[cur][0]
    }
}

/// Result of one distributed search run.
#[derive(Debug, Clone)]
pub struct SearchOutcome {
    /// Best tour cost found.
    pub best: i64,
    /// Total branch-and-bound nodes expanded across all searchers.
    pub nodes_explored: u64,
    /// Wall-clock time of the search.
    pub wall: Duration,
    /// Number of bound broadcasts issued.
    pub broadcasts: u64,
}

/// One frame of the explicit DFS stack.
#[derive(Debug, Clone)]
struct Frame {
    visited_mask: u32,
    last: usize,
    cost: i64,
    depth: usize,
}

/// A search worker: explores its subproblem in chunks (so bound broadcasts
/// interleave with the search), broadcasting improvements.
struct Searcher {
    inst: Arc<Instance>,
    pool: SpaceId,
    coordinator: ActorId,
    share: bool,
    best: i64,
    stack: Vec<Frame>,
    nodes: u64,
    broadcasts: u64,
    running: bool,
    backlog: Vec<usize>,
}

/// Nodes expanded per scheduling slot — small enough that broadcast bound
/// updates interleave with the search.
const CHUNK: u64 = 4_000;

impl Searcher {
    fn start_job(&mut self, second: usize) {
        let d = &self.inst.dist;
        self.stack.push(Frame {
            visited_mask: 1 | (1 << second),
            last: second,
            cost: d[0][second],
            depth: 2,
        });
    }

    fn step(&mut self, budget: u64) -> u64 {
        let inst = self.inst.clone();
        let n = inst.n;
        let mut used = 0;
        while used < budget {
            let Some(f) = self.stack.pop() else { break };
            used += 1;
            self.nodes += 1;
            if f.cost >= self.best {
                continue; // prune
            }
            if f.depth == n {
                let total = f.cost + inst.dist[f.last][0];
                if total < self.best {
                    self.best = total;
                    self.broadcasts += 1; // counted even when not shared
                }
                continue;
            }
            for next in 1..n {
                if f.visited_mask & (1 << next) != 0 {
                    continue;
                }
                let cost = f.cost + inst.dist[f.last][next];
                if cost < self.best {
                    self.stack.push(Frame {
                        visited_mask: f.visited_mask | (1 << next),
                        last: next,
                        cost,
                        depth: f.depth + 1,
                    });
                }
            }
        }
        used
    }
}

impl Behavior for Searcher {
    fn receive(&mut self, ctx: &mut Ctx<'_>, msg: Message) {
        let parts = match msg.body.as_list() {
            Some(p) if !p.is_empty() => p.to_vec(),
            _ => return,
        };
        let tag = parts[0].clone();
        if tag == Value::atom("job") {
            let second = parts[1].as_int().unwrap() as usize;
            if self.running {
                self.backlog.push(second);
            } else {
                self.running = true;
                self.start_job(second);
                let me = ctx.self_id();
                ctx.send_addr(me, Value::list([Value::atom("tick")]));
            }
            return;
        }
        if tag == Value::atom("bound") {
            let b = parts[1].as_int().unwrap();
            if b < self.best {
                self.best = b;
            }
            return;
        }
        if tag == Value::atom("tick") {
            let before_best = self.best;
            self.step(CHUNK);
            if self.share && self.best < before_best {
                // §5.3: broadcast the improved bound to every searcher.
                let _ = ctx.broadcast(
                    &pattern("searcher/**"),
                    self.pool,
                    Value::list([Value::atom("bound"), Value::int(self.best)]),
                );
            }
            if self.stack.is_empty() {
                // Current job exhausted: report it, then pick up the next.
                ctx.send_addr(
                    self.coordinator,
                    Value::list([
                        Value::atom("job-done"),
                        Value::int(self.best),
                        Value::int(self.nodes as i64),
                        Value::int(self.broadcasts as i64),
                    ]),
                );
                self.nodes = 0;
                self.broadcasts = 0;
                if let Some(second) = self.backlog.pop() {
                    self.start_job(second);
                    let me = ctx.self_id();
                    ctx.send_addr(me, Value::list([Value::atom("tick")]));
                } else {
                    self.running = false;
                }
            } else {
                let me = ctx.self_id();
                ctx.send_addr(me, Value::list([Value::atom("tick")]));
            }
        }
    }
}

/// Runs the distributed branch-and-bound: `workers` searchers in a pool,
/// one subproblem per second-city, incumbent shared via `broadcast` when
/// `share_bounds` (the ActorSpace configuration) or kept worker-local (the
/// baseline). The initial incumbent is the greedy tour.
pub fn solve_actorspace(inst: &Instance, workers: usize, share_bounds: bool) -> SearchOutcome {
    solve_actorspace_with(inst, workers, share_bounds, 1.0)
}

/// [`solve_actorspace`] with the initial incumbent loosened to
/// `greedy × slack` — sharing matters most when the starting bound is
/// poor, so E9 sweeps this.
pub fn solve_actorspace_with(
    inst: &Instance,
    workers: usize,
    share_bounds: bool,
    slack: f64,
) -> SearchOutcome {
    let inst = Arc::new(inst.clone());
    let system = ActorSystem::new(Config {
        workers: workers.clamp(1, 8),
        ..Config::default()
    });
    let pool = system.create_space(None).expect("create pool space");
    let (done_tx, done_rx) = mpsc::channel::<(i64, i64, i64)>();

    // Coordinator collects idle notifications.
    let coordinator = system.spawn(actorspace_runtime::from_fn(move |_ctx, msg| {
        if let Some(parts) = msg.body.as_list() {
            if parts.first() == Some(&Value::atom("job-done")) {
                let best = parts[1].as_int().unwrap();
                let nodes = parts[2].as_int().unwrap();
                let bcasts = parts[3].as_int().unwrap();
                let _ = done_tx.send((best, nodes, bcasts));
            }
        }
    }));

    let greedy = (inst.greedy() as f64 * slack.max(1.0)) as i64;
    for w in 0..workers {
        let s = Searcher {
            inst: inst.clone(),
            pool,
            coordinator: coordinator.id(),
            share: share_bounds,
            best: greedy,
            stack: Vec::new(),
            nodes: 0,
            broadcasts: 0,
            running: false,
            backlog: Vec::new(),
        };
        let h = system.spawn(s);
        system
            .make_visible(h.id(), &path(&format!("searcher/{w}")), pool, None)
            .expect("make searcher visible");
        h.leak();
    }

    let t0 = Instant::now();
    // One subproblem per choice of second city; load-balanced by `send(*)`.
    let n_jobs = inst.n - 1;
    for second in 1..inst.n {
        system
            .send_pattern(
                &pattern("searcher/**"),
                pool,
                Value::list([Value::atom("job"), Value::int(second as i64)]),
                None,
            )
            .expect("dispatch job");
    }

    let mut best = greedy;
    let mut nodes = 0u64;
    let mut broadcasts = 0u64;
    let mut done = 0usize;
    while done < n_jobs {
        let (b, n, bc) = done_rx
            .recv_timeout(Duration::from_secs(120))
            .expect("search must terminate");
        best = best.min(b);
        nodes += n as u64;
        broadcasts += bc as u64;
        done += 1;
    }
    let wall = t0.elapsed();
    system.shutdown();
    SearchOutcome {
        best,
        nodes_explored: nodes,
        wall,
        broadcasts,
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn held_karp_matches_brute_force_on_tiny_instances() {
        for seed in 0..3 {
            let inst = Instance::random(7, seed);
            // Brute force over permutations of 1..n.
            let mut cities: Vec<usize> = (1..inst.n).collect();
            let mut best = i64::MAX;
            permute(&mut cities, 0, &mut |perm| {
                let mut cost = inst.dist[0][perm[0]];
                for w in perm.windows(2) {
                    cost += inst.dist[w[0]][w[1]];
                }
                cost += inst.dist[*perm.last().unwrap()][0];
                best = best.min(cost);
            });
            assert_eq!(inst.held_karp(), best, "seed {seed}");
        }
    }

    fn permute(v: &mut Vec<usize>, k: usize, f: &mut impl FnMut(&[usize])) {
        if k == v.len() {
            f(v);
            return;
        }
        for i in k..v.len() {
            v.swap(k, i);
            permute(v, k + 1, f);
            v.swap(k, i);
        }
    }

    #[test]
    fn greedy_is_an_upper_bound() {
        let inst = Instance::random(10, 42);
        assert!(inst.greedy() >= inst.held_karp());
    }

    #[test]
    fn actorspace_search_finds_the_optimum() {
        let inst = Instance::random(10, 7);
        let exact = inst.held_karp();
        let got = solve_actorspace(&inst, 4, true);
        assert_eq!(got.best, exact);
    }

    #[test]
    fn baseline_without_sharing_also_finds_the_optimum() {
        let inst = Instance::random(9, 3);
        let exact = inst.held_karp();
        let got = solve_actorspace(&inst, 4, false);
        assert_eq!(got.best, exact);
    }

    #[test]
    fn bound_sharing_prunes_nodes() {
        // The paper's claim: broadcasting the improved bound reduces the
        // explored search space. Node counts vary with scheduling, so the
        // assertion aggregates three instances with a loose starting bound
        // (where sharing reliably matters) and allows 5% scheduling noise.
        let mut shared_total = 0u64;
        let mut lone_total = 0u64;
        for seed in [5u64, 6, 7] {
            let inst = Instance::random(11, seed);
            let shared = solve_actorspace_with(&inst, 4, true, 2.0);
            let lone = solve_actorspace_with(&inst, 4, false, 2.0);
            assert_eq!(shared.best, lone.best, "seed {seed}");
            shared_total += shared.nodes_explored;
            lone_total += lone.nodes_explored;
        }
        assert!(
            (shared_total as f64) <= lone_total as f64 * 1.05,
            "sharing explored {shared_total} nodes vs baseline {lone_total}"
        );
    }
}
