//! Reusable workloads behind the experiments.

pub mod pool;
pub mod repo;
pub mod tsp;
