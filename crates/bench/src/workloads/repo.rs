//! The pattern-directed software repository (E11) — §1:
//!
//! "The ActorSpace model allows open flexible interfaces for
//! pattern-directed retrieval from software repositories. … Consider each
//! class as a 'factory' actor which may return its instances. The interface
//! specifications of classes may be represented as attributes which are
//! then used to dynamically access classes from the library."
//!
//! The workload builds a class library of `size` factory actors whose
//! attributes encode a package / interface / version taxonomy
//! (`pkg-3/iface-1/v2`), then measures exact and wildcard lookups against
//! the same library served by the global name-server baseline (which can
//! only answer exact queries).

use std::collections::HashMap;
use std::time::Duration;

use actorspace_atoms::{atom, path, Path};
use actorspace_baselines::NameServer;
use actorspace_core::{policy::ManagerPolicy, ActorId, Registry, SpaceId};
use actorspace_pattern::Pattern;

/// A repository built directly on the core registry (no scheduling noise —
/// E11 measures *resolution*, not delivery).
pub struct Repository {
    /// The registry holding the library space.
    pub registry: Registry<u64>,
    /// The library actorSpace.
    pub space: SpaceId,
    /// Factory ids by (package, interface, version).
    pub factories: HashMap<(usize, usize, usize), ActorId>,
    /// Every factory's attribute path.
    pub attrs: Vec<(ActorId, Path)>,
}

/// Shape of the taxonomy: how many interfaces per package, versions per
/// interface.
pub const IFACES_PER_PKG: usize = 8;
/// Versions per interface.
pub const VERSIONS: usize = 4;

/// Builds a library with `size` factories.
pub fn build_repository(size: usize) -> Repository {
    let mut registry: Registry<u64> = Registry::new(ManagerPolicy::default());
    let space = registry.create_space(None);
    let mut factories = HashMap::new();
    let mut attrs = Vec::new();
    let mut sink = |_: ActorId, _: u64, _: Option<&actorspace_core::Route>| {};
    for k in 0..size {
        let pkg = k / (IFACES_PER_PKG * VERSIONS);
        let iface = (k / VERSIONS) % IFACES_PER_PKG;
        let ver = k % VERSIONS;
        let id = registry
            .create_actor(space, None)
            .expect("library space exists");
        let attr = path(&format!("pkg-{pkg}/iface-{iface}/v{ver}"));
        registry
            .make_visible(id.into(), vec![attr.clone()], space, None, &mut sink)
            .expect("factory registration");
        factories.insert((pkg, iface, ver), id);
        attrs.push((id, attr));
    }
    Repository {
        registry,
        space,
        factories,
        attrs,
    }
}

/// Builds the equivalent name-server library: one exact name per factory.
pub fn build_name_server(repo: &Repository) -> NameServer {
    let ns = NameServer::new();
    for (id, attr) in &repo.attrs {
        ns.register(atom(&attr.to_string()), id.0);
    }
    ns
}

/// An exact lookup through pattern resolution.
pub fn lookup_exact(repo: &Repository, pkg: usize, iface: usize, ver: usize) -> Vec<ActorId> {
    let pat = Pattern::parse(&format!("pkg-{pkg}/iface-{iface}/v{ver}")).expect("valid pattern");
    repo.registry.resolve(&pat, repo.space).expect("resolve")
}

/// A wildcard query: every version of one interface.
pub fn lookup_versions(repo: &Repository, pkg: usize, iface: usize) -> Vec<ActorId> {
    let pat = Pattern::parse(&format!("pkg-{pkg}/iface-{iface}/*")).expect("valid pattern");
    repo.registry.resolve(&pat, repo.space).expect("resolve")
}

/// A broad scan: everything exported by one package.
pub fn lookup_package(repo: &Repository, pkg: usize) -> Vec<ActorId> {
    let pat = Pattern::parse(&format!("pkg-{pkg}/**")).expect("valid pattern");
    repo.registry.resolve(&pat, repo.space).expect("resolve")
}

/// The name-server equivalent of an exact lookup.
pub fn ns_lookup_exact(ns: &NameServer, pkg: usize, iface: usize, ver: usize) -> Option<u64> {
    ns.lookup(atom(&format!("pkg-{pkg}/iface-{iface}/v{ver}")))
}

/// The name server cannot answer a wildcard query directly; the honest
/// emulation enumerates every possible exact name — which requires knowing
/// the whole taxonomy in advance. This is the cost E11 quantifies.
pub fn ns_lookup_versions_emulated(ns: &NameServer, pkg: usize, iface: usize) -> Vec<u64> {
    (0..VERSIONS)
        .filter_map(|v| ns.lookup(atom(&format!("pkg-{pkg}/iface-{iface}/v{v}"))))
        .collect()
}

/// Blocks until the repository can serve a late registration — shows the
/// §5.6 suspension working for repository access too (used in tests).
pub fn late_factory_is_found(repo: &mut Repository) -> bool {
    let pat = Pattern::parse("pkg-new/**").expect("valid");
    let before = repo.registry.resolve(&pat, repo.space).expect("resolve");
    if !before.is_empty() {
        return false;
    }
    let id = repo.registry.create_actor(repo.space, None).expect("space");
    let mut sink = |_: ActorId, _: u64, _: Option<&actorspace_core::Route>| {};
    repo.registry
        .make_visible(
            id.into(),
            vec![path("pkg-new/iface-0/v0")],
            repo.space,
            None,
            &mut sink,
        )
        .expect("register");
    let after = repo.registry.resolve(&pat, repo.space).expect("resolve");
    after == vec![id]
}

/// Handy duration for tests.
pub const QUERY_BUDGET: Duration = Duration::from_secs(5);

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn exact_lookup_finds_exactly_one_factory() {
        let repo = build_repository(256);
        let got = lookup_exact(&repo, 1, 2, 3);
        assert_eq!(got, vec![repo.factories[&(1, 2, 3)]]);
    }

    #[test]
    fn version_wildcard_finds_all_versions() {
        let repo = build_repository(256);
        let got = lookup_versions(&repo, 2, 5);
        assert_eq!(got.len(), VERSIONS);
        for v in 0..VERSIONS {
            assert!(got.contains(&repo.factories[&(2, 5, v)]));
        }
    }

    #[test]
    fn package_scan_finds_the_whole_package() {
        let repo = build_repository(256);
        let got = lookup_package(&repo, 0);
        assert_eq!(got.len(), IFACES_PER_PKG * VERSIONS);
    }

    #[test]
    fn name_server_matches_on_exact_queries_only() {
        let repo = build_repository(128);
        let ns = build_name_server(&repo);
        let pattern_hit = lookup_exact(&repo, 0, 1, 2);
        let ns_hit = ns_lookup_exact(&ns, 0, 1, 2).unwrap();
        assert_eq!(pattern_hit[0].0, ns_hit);
        // The wildcard emulation needs taxonomy knowledge the client may
        // not have; with it, results agree.
        let mut emu = ns_lookup_versions_emulated(&ns, 0, 1);
        emu.sort_unstable();
        let mut pat: Vec<u64> = lookup_versions(&repo, 0, 1).iter().map(|a| a.0).collect();
        pat.sort_unstable();
        assert_eq!(emu, pat);
    }

    #[test]
    fn late_registrations_are_immediately_queryable() {
        let mut repo = build_repository(64);
        assert!(late_factory_is_found(&mut repo));
    }
}
