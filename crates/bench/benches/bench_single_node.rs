//! E2 (Figure 2 / §7.2): the single-node message path.
//!
//! Measures (a) point-to-point send→receive throughput through the
//! coordinator/mailbox/scheduler stack, and (b) the pure pattern-resolution
//! cost as the number of visible actors and the pattern complexity grow.

use std::time::Duration;

use actorspace_atoms::path;
use actorspace_core::{policy::ManagerPolicy, ActorId, Registry, Route};
use actorspace_pattern::{pattern, Pattern};
use actorspace_runtime::{from_fn, ActorSystem, Config, Value};
use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion, Throughput};

fn bench_point_to_point(c: &mut Criterion) {
    let mut g = c.benchmark_group("E2_point_to_point");
    g.sample_size(10).measurement_time(Duration::from_secs(5));
    let batch: u64 = 10_000;
    g.throughput(Throughput::Elements(batch));
    let sys = ActorSystem::new(Config {
        workers: 2,
        ..Config::default()
    });
    let sink = sys.spawn(from_fn(|_, _| {}));
    g.bench_function("send_10k_msgs", |b| {
        b.iter(|| {
            for _ in 0..batch {
                sink.send(Value::int(1));
            }
            assert!(sys.await_idle(Duration::from_secs(30)));
        });
    });
    g.finish();
    sys.shutdown();
}

fn bench_pattern_send_path(c: &mut Criterion) {
    let mut g = c.benchmark_group("E2_pattern_send");
    g.sample_size(10).measurement_time(Duration::from_secs(5));
    let batch: u64 = 10_000;
    g.throughput(Throughput::Elements(batch));
    let sys = ActorSystem::new(Config {
        workers: 2,
        ..Config::default()
    });
    let space = sys.create_space(None).unwrap();
    let a = sys.spawn(from_fn(|_, _| {}));
    sys.make_visible(a.id(), &path("srv/one"), space, None)
        .unwrap();
    let pat = pattern("srv/*");
    g.bench_function("pattern_send_10k", |b| {
        b.iter(|| {
            for _ in 0..batch {
                sys.send_pattern(&pat, space, Value::int(1), None).unwrap();
            }
            assert!(sys.await_idle(Duration::from_secs(30)));
        });
    });
    g.finish();
    sys.shutdown();
}

/// Registry-only resolution: no scheduling noise.
fn resolve_registry(n_actors: usize) -> (Registry<u64>, actorspace_core::SpaceId) {
    let mut reg: Registry<u64> = Registry::new(ManagerPolicy::default());
    let space = reg.create_space(None);
    let mut sink = |_: ActorId, _: u64, _: Option<&Route>| {};
    for i in 0..n_actors {
        let a = reg.create_actor(space, None).unwrap();
        reg.make_visible(
            a.into(),
            vec![path(&format!("srv/class-{}/inst-{}", i % 97, i))],
            space,
            None,
            &mut sink,
        )
        .unwrap();
    }
    (reg, space)
}

fn bench_resolution_scaling(c: &mut Criterion) {
    let mut g = c.benchmark_group("E2_resolve_vs_visible_actors");
    g.sample_size(20);
    for n in [10usize, 100, 1_000, 10_000] {
        let (reg, space) = resolve_registry(n);
        let exact = Pattern::parse(&format!("srv/class-1/inst-{}", 1.min(n - 1))).unwrap();
        let wild = pattern("srv/class-1/*");
        let scan = pattern("**");
        g.bench_with_input(BenchmarkId::new("exact", n), &n, |b, _| {
            b.iter(|| reg.resolve(&exact, space).unwrap());
        });
        g.bench_with_input(BenchmarkId::new("wildcard", n), &n, |b, _| {
            b.iter(|| reg.resolve(&wild, space).unwrap());
        });
        g.bench_with_input(BenchmarkId::new("full_scan", n), &n, |b, _| {
            b.iter(|| reg.resolve(&scan, space).unwrap());
        });
    }
    g.finish();
}

fn bench_pattern_complexity(c: &mut Criterion) {
    let mut g = c.benchmark_group("E2_resolve_vs_pattern_complexity");
    g.sample_size(20);
    let (reg, space) = resolve_registry(1_000);
    for (name, pat) in [
        ("literal", pattern("srv/class-1/inst-1")),
        ("one_star", pattern("srv/*/inst-1")),
        ("double_star", pattern("**/inst-1")),
        ("alternation", pattern("srv/{class-1, class-2, class-3}/*")),
        ("neg_class", pattern("srv/[^class-1]/*")),
    ] {
        g.bench_function(name, |b| {
            b.iter(|| reg.resolve(&pat, space).unwrap());
        });
    }
    g.finish();
}

criterion_group!(
    benches,
    bench_point_to_point,
    bench_pattern_send_path,
    bench_resolution_scaling,
    bench_pattern_complexity
);
criterion_main!(benches);
