//! E4 (§5.3): automatic load balancing over replicated services.
//!
//! "As the messages to the servers are distributed non-deterministically,
//! the load may be balanced automatically by an implementation, and none
//! of the clients need to know the exact number of potential receivers."
//!
//! Measures pattern-send cost as the replica group grows (the client's
//! code and pattern stay identical) and compares the three selection
//! policies. Distribution *uniformity* is asserted by the experiments
//! binary (chi-square); here we measure cost.

use std::time::Duration;

use actorspace_atoms::path;
use actorspace_core::{ManagerPolicy, SelectionPolicy};
use actorspace_pattern::pattern;
use actorspace_runtime::{from_fn, ActorSystem, Config, Value};
use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion, Throughput};

fn system_with_replicas(
    k: usize,
    selection: SelectionPolicy,
) -> (ActorSystem, actorspace_core::SpaceId) {
    let sys = ActorSystem::new(Config {
        workers: 2,
        ..Config::default()
    });
    let space = sys.create_space(None).unwrap();
    let policy = ManagerPolicy {
        selection,
        ..Default::default()
    };
    sys.set_space_policy(space, policy, None).unwrap();
    for _ in 0..k {
        let r = sys.spawn(from_fn(|_, _| {}));
        sys.make_visible(r.id(), &path("srv/kv"), space, None)
            .unwrap();
        r.leak();
    }
    (sys, space)
}

fn bench_replica_scaling(c: &mut Criterion) {
    let mut g = c.benchmark_group("E4_send_vs_replicas");
    g.sample_size(10).measurement_time(Duration::from_secs(5));
    let batch = 5_000u64;
    g.throughput(Throughput::Elements(batch));
    for k in [1usize, 4, 16, 32] {
        let (sys, space) = system_with_replicas(k, SelectionPolicy::Random);
        let pat = pattern("srv/kv");
        g.bench_with_input(BenchmarkId::from_parameter(k), &k, |b, _| {
            b.iter(|| {
                for _ in 0..batch {
                    sys.send_pattern(&pat, space, Value::int(1), None).unwrap();
                }
                assert!(sys.await_idle(Duration::from_secs(30)));
            });
        });
        sys.shutdown();
    }
    g.finish();
}

fn bench_selection_policies(c: &mut Criterion) {
    let mut g = c.benchmark_group("E4_selection_policy");
    g.sample_size(10).measurement_time(Duration::from_secs(5));
    let batch = 5_000u64;
    g.throughput(Throughput::Elements(batch));
    for (name, policy) in [
        ("random", SelectionPolicy::Random),
        ("round_robin", SelectionPolicy::RoundRobin),
        ("least_loaded", SelectionPolicy::LeastLoaded),
    ] {
        let (sys, space) = system_with_replicas(8, policy);
        let pat = pattern("srv/kv");
        g.bench_function(name, |b| {
            b.iter(|| {
                for _ in 0..batch {
                    sys.send_pattern(&pat, space, Value::int(1), None).unwrap();
                }
                assert!(sys.await_idle(Duration::from_secs(30)));
            });
        });
        sys.shutdown();
    }
    g.finish();
}

criterion_group!(benches, bench_replica_scaling, bench_selection_policies);
criterion_main!(benches);
