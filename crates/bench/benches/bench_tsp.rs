//! E9 (§5.3 / §1): branch-and-bound TSP with broadcast bounds.
//!
//! Compares the search with incumbent broadcasting against the identical
//! search without sharing, for worker counts 2 and 4, on a fixed instance
//! with a loose starting bound (where sharing matters most).

use std::time::Duration;

use actorspace_bench::workloads::tsp::{solve_actorspace_with, Instance};
use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};

fn bench_tsp_sharing(c: &mut Criterion) {
    let mut g = c.benchmark_group("E9_tsp");
    g.sample_size(10).measurement_time(Duration::from_secs(20));
    let inst = Instance::random(11, 7);
    let exact = inst.held_karp();
    for workers in [2usize, 4] {
        g.bench_with_input(
            BenchmarkId::new("broadcast_bounds", workers),
            &workers,
            |b, &w| {
                b.iter(|| {
                    let out = solve_actorspace_with(&inst, w, true, 2.0);
                    assert_eq!(out.best, exact);
                    out
                })
            },
        );
        g.bench_with_input(
            BenchmarkId::new("no_sharing", workers),
            &workers,
            |b, &w| {
                b.iter(|| {
                    let out = solve_actorspace_with(&inst, w, false, 2.0);
                    assert_eq!(out.best, exact);
                    out
                })
            },
        );
    }
    g.finish();
}

criterion_group!(benches, bench_tsp_sharing);
criterion_main!(benches);
