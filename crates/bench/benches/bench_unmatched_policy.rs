//! E6 (§5.6): the unmatched-message policies.
//!
//! Measures the registry-level cost of each policy for a send whose
//! pattern matches nothing, and the suspend→wake cycle (send unmatched,
//! then make a matching actor visible). Suspension is "the cheapest option
//! that avoids repeated synchronization" — the bench quantifies what it
//! costs relative to discarding.

use actorspace_atoms::path;
use actorspace_core::{
    policy::{ManagerPolicy, UnmatchedPolicy},
    ActorId, Registry, Route,
};
use actorspace_pattern::pattern;
use criterion::{criterion_group, criterion_main, Criterion};

fn registry(unmatched: UnmatchedPolicy) -> Registry<u64> {
    let p = ManagerPolicy {
        unmatched_send: unmatched,
        unmatched_broadcast: unmatched,
        selection_seed: Some(1),
        ..Default::default()
    };
    Registry::new(p)
}

fn bench_unmatched_send(c: &mut Criterion) {
    let mut g = c.benchmark_group("E6_unmatched_send");
    for (name, policy) in [
        ("discard", UnmatchedPolicy::Discard),
        ("suspend", UnmatchedPolicy::Suspend),
        ("error", UnmatchedPolicy::Error),
    ] {
        g.bench_function(name, |b| {
            b.iter_with_setup(
                || {
                    let mut r = registry(policy);
                    let s = r.create_space(None);
                    (r, s)
                },
                |(mut r, s)| {
                    let mut sink = |_: ActorId, _: u64, _: Option<&Route>| {};
                    let pat = pattern("ghost");
                    for _ in 0..100 {
                        let _ = r.send(&pat, s, 1, &mut sink);
                    }
                },
            );
        });
    }
    g.finish();
}

fn bench_suspend_wake_cycle(c: &mut Criterion) {
    let mut g = c.benchmark_group("E6_suspend_wake");
    g.bench_function("send_then_arrival_releases", |b| {
        b.iter_with_setup(
            || {
                let mut r = registry(UnmatchedPolicy::Suspend);
                let s = r.create_space(None);
                let a = r.create_actor(s, None).unwrap();
                (r, s, a)
            },
            |(mut r, s, a)| {
                let mut delivered = 0u32;
                let mut sink = |_: ActorId, _: u64, _: Option<&Route>| {
                    delivered += 1;
                };
                let pat = pattern("late");
                for _ in 0..50 {
                    r.send(&pat, s, 1, &mut sink).unwrap();
                }
                r.make_visible(a.into(), vec![path("late")], s, None, &mut sink)
                    .unwrap();
                assert_eq!(delivered, 50);
            },
        );
    });
    g.bench_function("persistent_broadcast_with_10_arrivals", |b| {
        b.iter_with_setup(
            || {
                let mut r = registry(UnmatchedPolicy::Persistent);
                let s = r.create_space(None);
                let actors: Vec<ActorId> =
                    (0..10).map(|_| r.create_actor(s, None).unwrap()).collect();
                (r, s, actors)
            },
            |(mut r, s, actors)| {
                let mut delivered = 0u32;
                let mut sink = |_: ActorId, _: u64, _: Option<&Route>| {
                    delivered += 1;
                };
                r.broadcast(&pattern("node"), s, 1, &mut sink).unwrap();
                for a in actors {
                    r.make_visible(a.into(), vec![path("node")], s, None, &mut sink)
                        .unwrap();
                }
                assert_eq!(delivered, 10);
            },
        );
    });
    g.finish();
}

/// The cost visibility changes pay for the wake machinery when there is
/// nothing pending — the common case.
fn bench_wake_overhead_when_nothing_pending(c: &mut Criterion) {
    let mut g = c.benchmark_group("E6_wake_overhead");
    g.bench_function("make_visible_no_pending", |b| {
        b.iter_with_setup(
            || {
                let mut r = registry(UnmatchedPolicy::Suspend);
                let s = r.create_space(None);
                let actors: Vec<ActorId> =
                    (0..100).map(|_| r.create_actor(s, None).unwrap()).collect();
                (r, s, actors)
            },
            |(mut r, s, actors)| {
                let mut sink = |_: ActorId, _: u64, _: Option<&Route>| {};
                for (i, a) in actors.into_iter().enumerate() {
                    r.make_visible(a.into(), vec![path(&format!("w/{i}"))], s, None, &mut sink)
                        .unwrap();
                }
            },
        );
    });
    g.finish();
}

criterion_group!(
    benches,
    bench_unmatched_send,
    bench_suspend_wake_cycle,
    bench_wake_overhead_when_nothing_pending
);
criterion_main!(benches);
