//! E10 (§5.5): garbage collection of actors and actorSpaces.
//!
//! Builds populations with varying live fractions and measures the
//! mark/sweep pass. Verifies the paper's structural points as a side
//! effect: spaces are passive, so collecting them is a forward
//! reachability problem only.

use actorspace_atoms::path;
use actorspace_core::{policy::ManagerPolicy, ActorId, Registry, Route, ROOT_SPACE};
use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion, Throughput};

/// Builds `spaces` spaces × `actors_per_space` actors. `live_fraction` of
/// the spaces are anchored to the root (their members survive); the rest
/// are garbage.
fn population(spaces: usize, actors_per_space: usize, live_fraction: f64) -> Registry<u64> {
    let mut r: Registry<u64> = Registry::new(ManagerPolicy::default());
    let mut sink = |_: ActorId, _: u64, _: Option<&Route>| {};
    for s in 0..spaces {
        let space = r.create_space(None);
        if (s as f64) < spaces as f64 * live_fraction {
            r.make_visible(
                space.into(),
                vec![path(&format!("s{s}"))],
                ROOT_SPACE,
                None,
                &mut sink,
            )
            .unwrap();
        }
        for a in 0..actors_per_space {
            let actor = r.create_actor(space, None).unwrap();
            r.make_visible(
                actor.into(),
                vec![path(&format!("a{a}"))],
                space,
                None,
                &mut sink,
            )
            .unwrap();
        }
    }
    r
}

fn bench_collection(c: &mut Criterion) {
    let mut g = c.benchmark_group("E10_gc");
    g.sample_size(20);
    let spaces = 100;
    let per = 50;
    g.throughput(Throughput::Elements((spaces * per) as u64));
    for (name, live) in [("all_garbage", 0.0), ("half_live", 0.5), ("all_live", 1.0)] {
        g.bench_with_input(BenchmarkId::from_parameter(name), &live, |b, &live| {
            b.iter_with_setup(
                || population(spaces, per, live),
                |mut r| {
                    let report = r.collect_garbage(&|_| Vec::new());
                    let expected_dead = ((spaces as f64 * (1.0 - live)).round() as usize) * per;
                    assert_eq!(report.collected_actors.len(), expected_dead);
                    report
                },
            );
        });
    }
    g.finish();
}

fn bench_collection_scaling(c: &mut Criterion) {
    let mut g = c.benchmark_group("E10_gc_scaling");
    g.sample_size(10);
    for total in [1_000usize, 10_000, 50_000] {
        g.throughput(Throughput::Elements(total as u64));
        g.bench_with_input(BenchmarkId::from_parameter(total), &total, |b, &t| {
            b.iter_with_setup(
                || population(t / 50, 50, 0.5),
                |mut r| r.collect_garbage(&|_| Vec::new()),
            );
        });
    }
    g.finish();
}

criterion_group!(benches, bench_collection, bench_collection_scaling);
criterion_main!(benches);
