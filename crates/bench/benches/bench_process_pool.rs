//! E1 (Figure 1 / §6): the dynamic process pool.
//!
//! Sweeps worker count for a fixed divide-and-conquer job, and measures a
//! dynamic-arrival configuration (half the workers join mid-run). The
//! claim reproduced: no master bottleneck; adding workers speeds the job
//! without stopping the system.

use std::time::Duration;

use actorspace_bench::workloads::pool::{run_pool, PoolParams};
use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};

fn params(workers: usize) -> PoolParams {
    PoolParams {
        range: 1 << 16,
        grain: 512,
        initial_workers: workers,
        late_workers: 0,
        work_per_item: 48,
        os_threads: 4,
        ..PoolParams::default()
    }
}

fn bench_scaling(c: &mut Criterion) {
    let mut g = c.benchmark_group("E1_pool_scaling");
    g.sample_size(10).measurement_time(Duration::from_secs(8));
    for workers in [1usize, 2, 4, 8] {
        g.bench_with_input(BenchmarkId::from_parameter(workers), &workers, |b, &w| {
            b.iter(|| run_pool(&params(w)));
        });
    }
    g.finish();
}

fn bench_dynamic_arrival(c: &mut Criterion) {
    let mut g = c.benchmark_group("E1_pool_dynamic");
    g.sample_size(10).measurement_time(Duration::from_secs(8));
    // 2 workers throughout vs 2 workers + 2 arriving mid-run.
    g.bench_function("static_2_workers", |b| {
        b.iter(|| run_pool(&params(2)));
    });
    g.bench_function("2_plus_2_late_workers", |b| {
        b.iter(|| {
            run_pool(&PoolParams {
                late_workers: 2,
                late_after: Duration::from_millis(2),
                ..params(2)
            })
        });
    });
    g.bench_function("static_4_workers", |b| {
        b.iter(|| run_pool(&params(4)));
    });
    g.finish();
}

criterion_group!(benches, bench_scaling, bench_dynamic_arrival);
criterion_main!(benches);
