//! E12 (ablation): the exact-prefix attribute index.
//!
//! Literal destination patterns can be answered from a per-space inverted
//! index instead of the NFA walk. This bench compares indexed vs unindexed
//! resolution across library sizes — the design-choice ablation DESIGN.md
//! calls out for the linear resolve cost E2/E11 expose.

use actorspace_atoms::path;
use actorspace_core::{policy::ManagerPolicy, ActorId, Registry, Route, SpaceId};
use actorspace_pattern::{pattern, Pattern};
use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};

fn build(n: usize, use_index: bool) -> (Registry<u64>, SpaceId) {
    let policy = ManagerPolicy {
        use_literal_index: use_index,
        ..Default::default()
    };
    let mut reg: Registry<u64> = Registry::new(policy);
    let space = reg.create_space(None);
    let mut sink = |_: ActorId, _: u64, _: Option<&Route>| {};
    for i in 0..n {
        let a = reg.create_actor(space, None).unwrap();
        reg.make_visible(
            a.into(),
            vec![path(&format!("srv/class-{}/inst-{}", i % 97, i))],
            space,
            None,
            &mut sink,
        )
        .unwrap();
    }
    (reg, space)
}

fn bench_index_ablation(c: &mut Criterion) {
    let mut g = c.benchmark_group("E12_literal_index");
    g.sample_size(30);
    for n in [1_000usize, 10_000] {
        let exact = Pattern::parse("srv/class-1/inst-1").unwrap();
        let missing = Pattern::parse("srv/class-1/inst-absent").unwrap();
        let wildcard = pattern("srv/class-1/*");
        let (indexed, si) = build(n, true);
        let (unindexed, su) = build(n, false);
        g.bench_with_input(BenchmarkId::new("exact_indexed", n), &n, |b, _| {
            b.iter(|| {
                assert_eq!(indexed.resolve(&exact, si).unwrap().len(), 1);
            });
        });
        g.bench_with_input(BenchmarkId::new("exact_unindexed", n), &n, |b, _| {
            b.iter(|| {
                assert_eq!(unindexed.resolve(&exact, su).unwrap().len(), 1);
            });
        });
        g.bench_with_input(BenchmarkId::new("miss_indexed", n), &n, |b, _| {
            b.iter(|| {
                assert!(indexed.resolve(&missing, si).unwrap().is_empty());
            });
        });
        g.bench_with_input(BenchmarkId::new("wildcard_either", n), &n, |b, _| {
            b.iter(|| indexed.resolve(&wildcard, si).unwrap());
        });
    }
    g.finish();
}

criterion_group!(benches, bench_index_ablation);
criterion_main!(benches);
