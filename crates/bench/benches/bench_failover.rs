//! E7: node-failure recovery — time to reroute after `kill_node`.
//!
//! The paper's open-systems pitch (§2) is that components "may be added,
//! replaced or removed at runtime"; this bench measures the replacement
//! path when removal is a *crash*. A pool of workers lives on a doomed
//! node; the node is killed with messages resolved-but-undelivered to it;
//! the measured interval runs from the kill to the last of those messages
//! completing against a survivor. That covers the whole recovery pipeline:
//! heartbeat silence → suspicion → `NodeDown` purge → journal drain →
//! re-resolution — so the floor is the failure-detector threshold, and the
//! slope over pool sizes is the re-resolution cost per in-flight message.
//!
//! Besides the Criterion group, `report_failover_json` prints the
//! `{"title","headers","rows"}` JSON shape from [`actorspace_bench::report`]
//! for machine-readable capture.

use std::sync::mpsc::Receiver;
use std::time::Duration;

use actorspace_atoms::path;
use actorspace_bench::report::{fmt_dur, time_it, Table};
use actorspace_core::SpaceId;
use actorspace_net::{Cluster, ClusterConfig, FailureConfig};
use actorspace_pattern::pattern;
use actorspace_runtime::{from_fn, Message, Value};
use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};

const TIMEOUT: Duration = Duration::from_secs(30);
const POOL_SIZES: [usize; 3] = [1, 8, 32];

struct Fixture {
    cluster: Cluster,
    space: SpaceId,
    survivor: actorspace_core::ActorId,
    rx: Receiver<Message>,
}

/// Boots a 3-node cluster with a `pool`-worker pool on doomed node 2 and a
/// not-yet-visible survivor echo worker on node 1.
fn boot(pool: usize) -> Fixture {
    let cluster = Cluster::new(ClusterConfig {
        nodes: 3,
        failure: FailureConfig::fast(),
        ..ClusterConfig::default()
    });
    let (inbox, rx) = cluster.node(0).system().inbox();
    let space = cluster.node(0).create_space(None);
    for _ in 0..pool {
        let w = cluster.node(2).spawn(from_fn(|_, _| {}));
        cluster
            .node(2)
            .make_visible(w, &path("pool/w"), space, None)
            .unwrap();
    }
    let survivor = cluster.node(1).spawn(from_fn(move |ctx, msg| {
        ctx.send_addr(inbox, msg.body);
    }));
    assert!(
        cluster.await_coherence(TIMEOUT),
        "boot must reach coherence"
    );
    Fixture {
        cluster,
        space,
        survivor,
        rx,
    }
}

/// The measured interval: kill the pool's node, issue one send per pool
/// worker (each resolves against the stale replica, so each takes the full
/// failover path), advertise the survivor, and wait for every message to
/// come back through it.
fn reroute(f: &Fixture, pool: usize) {
    f.cluster.kill_node(2);
    for i in 0..pool {
        f.cluster
            .node(0)
            .send_pattern(&pattern("pool/w"), f.space, Value::int(i as i64))
            .unwrap();
    }
    f.cluster
        .node(1)
        .make_visible(f.survivor, &path("pool/w"), f.space, None)
        .unwrap();
    for _ in 0..pool {
        f.rx.recv_timeout(TIMEOUT)
            .expect("rerouted message must arrive");
    }
}

fn bench_failover_reroute(c: &mut Criterion) {
    let mut g = c.benchmark_group("E7_failover_reroute");
    // Every sample pays the detector threshold (~tens of ms) plus a full
    // cluster boot in setup; keep the sample count proportionate.
    g.sample_size(10).measurement_time(Duration::from_secs(10));
    for pool in POOL_SIZES {
        g.bench_with_input(
            BenchmarkId::new("kill_to_redelivery", pool),
            &pool,
            |b, &pool| {
                b.iter_with_setup(
                    || boot(pool),
                    |f| {
                        reroute(&f, pool);
                        f.cluster.shutdown();
                    },
                );
            },
        );
    }
    g.finish();
}

/// One untimed-by-Criterion pass per pool size, reported in the repo's
/// table shape (text + JSON) for capture alongside EXPERIMENTS.md.
fn report_failover_json(_c: &mut Criterion) {
    let mut table = Table::new(
        "E7 failover: kill_node to full redelivery",
        &["pool", "kill_to_redelivery"],
    );
    for pool in POOL_SIZES {
        let f = boot(pool);
        let (_, elapsed) = time_it(|| reroute(&f, pool));
        f.cluster.shutdown();
        table.row(&[pool.to_string(), fmt_dur(elapsed)]);
    }
    table.print();
    println!("{}", table.to_json());
}

criterion_group!(benches, bench_failover_reroute, report_failover_json);
criterion_main!(benches);
