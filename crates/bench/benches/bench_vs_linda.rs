//! E8 (§3): ActorSpace pattern communication vs Linda tuple-space polling.
//!
//! "In Linda and its variants, processes must actively poll a tuple space
//! and specify the type of tuple they want to retrieve."
//!
//! The workload is a request/reply service: clients issue requests tagged
//! with a service name, workers serve them, clients collect replies. The
//! ActorSpace version pushes messages to pattern-matched actors; the Linda
//! version deposits request tuples that worker threads `in()` and deposits
//! reply tuples that the client `in()`s back.

use std::sync::Arc;
use std::time::Duration;

use actorspace_atoms::path;
use actorspace_baselines::tuple_space::{exact, wild, Field, TuplePattern, TupleSpace};
use actorspace_pattern::pattern;
use actorspace_runtime::{from_fn, ActorSystem, Config, Value};
use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion, Throughput};

const REQUESTS: u64 = 2_000;

fn actorspace_round(workers: usize) {
    let sys = ActorSystem::new(Config {
        workers: 4,
        ..Config::default()
    });
    let space = sys.create_space(None).unwrap();
    let (inbox, rx) = sys.inbox();
    for _ in 0..workers {
        let w = sys.spawn(from_fn(move |ctx, msg| {
            let n = msg.body.as_int().unwrap();
            ctx.send_addr(inbox, Value::int(n + 1));
        }));
        sys.make_visible(w.id(), &path("svc"), space, None).unwrap();
        w.leak();
    }
    let pat = pattern("svc");
    for i in 0..REQUESTS {
        sys.send_pattern(&pat, space, Value::int(i as i64), None)
            .unwrap();
    }
    for _ in 0..REQUESTS {
        rx.recv_timeout(Duration::from_secs(60)).expect("reply");
    }
    sys.shutdown();
}

fn linda_round(workers: usize) {
    let ts = Arc::new(TupleSpace::new());
    let mut handles = Vec::new();
    for _ in 0..workers {
        let ts = ts.clone();
        handles.push(std::thread::spawn(move || {
            let req = TuplePattern::new([exact("req"), wild()]);
            loop {
                let Some(t) = ts.in_(&req, Duration::from_secs(60)) else {
                    return;
                };
                let Field::Int(n) = t[1] else { continue };
                if n < 0 {
                    return; // poison pill
                }
                ts.out(vec![Field::str("rep"), Field::Int(n + 1)]);
            }
        }));
    }
    for i in 0..REQUESTS {
        ts.out(vec![Field::str("req"), Field::Int(i as i64)]);
    }
    let rep = TuplePattern::new([exact("rep"), wild()]);
    for _ in 0..REQUESTS {
        ts.in_(&rep, Duration::from_secs(60)).expect("reply tuple");
    }
    for _ in 0..workers {
        ts.out(vec![Field::str("req"), Field::Int(-1)]);
    }
    for h in handles {
        h.join().unwrap();
    }
}

fn bench_request_reply(c: &mut Criterion) {
    let mut g = c.benchmark_group("E8_request_reply");
    g.sample_size(10).measurement_time(Duration::from_secs(8));
    g.throughput(Throughput::Elements(REQUESTS));
    for workers in [1usize, 4, 16] {
        g.bench_with_input(
            BenchmarkId::new("actorspace_push", workers),
            &workers,
            |b, &w| b.iter(|| actorspace_round(w)),
        );
        g.bench_with_input(
            BenchmarkId::new("linda_polling", workers),
            &workers,
            |b, &w| b.iter(|| linda_round(w)),
        );
    }
    g.finish();
}

criterion_group!(benches, bench_request_reply);
criterion_main!(benches);
