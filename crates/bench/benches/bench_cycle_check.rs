//! E7 (§5.7): the cost of cycle prevention.
//!
//! "In implementation terms, avoiding such cycles means that a visibility
//! relation graph must be constructed before an actorSpace is allowed to
//! be visible."
//!
//! Measures `make_visible` for a *space* member (which runs the DAG
//! reachability check) against `make_visible` for an *actor* member (no
//! check) as the visibility graph deepens — the marginal price of safety.

use actorspace_atoms::path;
use actorspace_core::{policy::ManagerPolicy, ActorId, Registry, Route, SpaceId};
use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};

/// Builds a linear chain of `depth` spaces: s0 visible in s1 … visible in
/// s(depth-1). Returns all spaces.
fn chain(depth: usize) -> (Registry<u64>, Vec<SpaceId>) {
    let mut r: Registry<u64> = Registry::new(ManagerPolicy::default());
    let spaces: Vec<SpaceId> = (0..depth).map(|_| r.create_space(None)).collect();
    let mut sink = |_: ActorId, _: u64, _: Option<&Route>| {};
    for w in spaces.windows(2) {
        r.make_visible(w[0].into(), vec![path("sub")], w[1], None, &mut sink)
            .unwrap();
    }
    (r, spaces)
}

fn bench_dag_check_vs_depth(c: &mut Criterion) {
    let mut g = c.benchmark_group("E7_make_visible_space");
    for depth in [4usize, 16, 64, 256] {
        g.bench_with_input(BenchmarkId::new("space_member", depth), &depth, |b, &d| {
            b.iter_with_setup(
                || {
                    let (mut r, spaces) = chain(d);
                    let extra = r.create_space(None);
                    (r, spaces, extra)
                },
                |(mut r, spaces, extra)| {
                    let mut sink = |_: ActorId, _: u64, _: Option<&Route>| {};
                    // Making the chain head visible in a fresh space walks
                    // the reachable subgraph (the whole chain below it).
                    r.make_visible(
                        spaces[d - 1].into(),
                        vec![path("x")],
                        extra,
                        None,
                        &mut sink,
                    )
                    .unwrap();
                },
            );
        });
        g.bench_with_input(BenchmarkId::new("actor_member", depth), &depth, |b, &d| {
            b.iter_with_setup(
                || {
                    let (mut r, spaces) = chain(d);
                    let top = spaces[d - 1];
                    let a = r.create_actor(top, None).unwrap();
                    (r, top, a)
                },
                |(mut r, top, a)| {
                    let mut sink = |_: ActorId, _: u64, _: Option<&Route>| {};
                    // Actors cannot form cycles: no graph walk.
                    r.make_visible(a.into(), vec![path("x")], top, None, &mut sink)
                        .unwrap();
                },
            );
        });
    }
    g.finish();
}

fn bench_rejected_cycle_cost(c: &mut Criterion) {
    let mut g = c.benchmark_group("E7_cycle_rejection");
    for depth in [16usize, 256] {
        g.bench_with_input(BenchmarkId::from_parameter(depth), &depth, |b, &d| {
            b.iter_with_setup(
                || chain(d),
                |(mut r, spaces)| {
                    let mut sink = |_: ActorId, _: u64, _: Option<&Route>| {};
                    // Closing the chain into a loop must be detected (and
                    // costs a full-chain walk — the worst case).
                    let err = r
                        .make_visible(
                            (*spaces.last().unwrap()).into(),
                            vec![path("loop")],
                            spaces[0],
                            None,
                            &mut sink,
                        )
                        .unwrap_err();
                    assert!(matches!(err, actorspace_core::Error::WouldCycle { .. }));
                },
            );
        });
    }
    g.finish();
}

criterion_group!(benches, bench_dag_check_vs_depth, bench_rejected_cycle_cost);
criterion_main!(benches);
