//! E11 (§1): pattern-directed repository access vs the name-server
//! baseline.
//!
//! Sweeps library size; measures exact lookups (where a hash-based name
//! server should win on constants), wildcard version queries, and package
//! scans (which the name server cannot express without enumerating the
//! taxonomy).

use actorspace_bench::workloads::repo::{
    build_name_server, build_repository, lookup_exact, lookup_package, lookup_versions,
    ns_lookup_exact, ns_lookup_versions_emulated,
};
use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};

fn bench_lookups(c: &mut Criterion) {
    let mut g = c.benchmark_group("E11_repository");
    g.sample_size(20);
    for size in [100usize, 1_000, 10_000, 100_000] {
        let repo = build_repository(size);
        let ns = build_name_server(&repo);
        // Query coordinates that exist at every size.
        let (pkg, iface, ver) = (0usize, 1usize, 2usize);

        g.bench_with_input(BenchmarkId::new("pattern_exact", size), &size, |b, _| {
            b.iter(|| {
                let got = lookup_exact(&repo, pkg, iface, ver);
                assert_eq!(got.len(), 1);
            });
        });
        g.bench_with_input(BenchmarkId::new("ns_exact", size), &size, |b, _| {
            b.iter(|| {
                assert!(ns_lookup_exact(&ns, pkg, iface, ver).is_some());
            });
        });
        g.bench_with_input(BenchmarkId::new("pattern_versions", size), &size, |b, _| {
            b.iter(|| lookup_versions(&repo, pkg, iface));
        });
        g.bench_with_input(
            BenchmarkId::new("ns_versions_emulated", size),
            &size,
            |b, _| {
                b.iter(|| ns_lookup_versions_emulated(&ns, pkg, iface));
            },
        );
        g.bench_with_input(
            BenchmarkId::new("pattern_package_scan", size),
            &size,
            |b, _| {
                b.iter(|| lookup_package(&repo, pkg));
            },
        );
    }
    g.finish();
}

criterion_group!(benches, bench_lookups);
criterion_main!(benches);
