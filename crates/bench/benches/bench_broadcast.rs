//! E5 (§5.3): broadcast vs explicit sends.
//!
//! "Broadcasting could be simulated by explicitly sending a message to all
//! actors in the group, but this requires that the sender know each of
//! these actors."
//!
//! Measures one `broadcast(pattern)` against `g` explicit `send_to`
//! calls as the group grows. Total work is O(g) either way; what the
//! abstraction buys is the constant *sender-side* cost (one call, no
//! membership list) — and the registry resolving once, centrally.

use std::time::Duration;

use actorspace_atoms::path;
use actorspace_core::ActorId;
use actorspace_pattern::pattern;
use actorspace_runtime::{from_fn, ActorSystem, Config, Value};
use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion, Throughput};

fn group_system(g: usize) -> (ActorSystem, actorspace_core::SpaceId, Vec<ActorId>) {
    let sys = ActorSystem::new(Config {
        workers: 4,
        ..Config::default()
    });
    let space = sys.create_space(None).unwrap();
    let mut ids = Vec::with_capacity(g);
    for _ in 0..g {
        let a = sys.spawn(from_fn(|_, _| {}));
        sys.make_visible(a.id(), &path("node"), space, None)
            .unwrap();
        ids.push(a.leak());
    }
    (sys, space, ids)
}

fn bench_broadcast_vs_explicit(c: &mut Criterion) {
    let mut g = c.benchmark_group("E5_broadcast_vs_explicit");
    g.sample_size(10).measurement_time(Duration::from_secs(5));
    for size in [1usize, 16, 256, 4096] {
        g.throughput(Throughput::Elements(size as u64));
        let (sys, space, ids) = group_system(size);
        let pat = pattern("node");
        g.bench_with_input(BenchmarkId::new("broadcast", size), &size, |b, _| {
            b.iter(|| {
                sys.broadcast(&pat, space, Value::int(7), None).unwrap();
                assert!(sys.await_idle(Duration::from_secs(30)));
            });
        });
        g.bench_with_input(BenchmarkId::new("explicit_sends", size), &size, |b, _| {
            b.iter(|| {
                for &id in &ids {
                    sys.send_to(id, Value::int(7));
                }
                assert!(sys.await_idle(Duration::from_secs(30)));
            });
        });
        sys.shutdown();
    }
    g.finish();
}

/// Sender-side cost only: how long until the send call returns (the
/// abstraction claim — the sender's obligation is O(1) in group knowledge).
fn bench_sender_side_cost(c: &mut Criterion) {
    let mut g = c.benchmark_group("E5_sender_side");
    g.sample_size(20);
    for size in [16usize, 256, 4096] {
        let (sys, space, ids) = group_system(size);
        let pat = pattern("node");
        g.bench_with_input(BenchmarkId::new("broadcast_call", size), &size, |b, _| {
            b.iter(|| {
                sys.broadcast(&pat, space, Value::int(7), None).unwrap();
            });
            sys.await_idle(Duration::from_secs(60));
        });
        g.bench_with_input(BenchmarkId::new("explicit_loop", size), &size, |b, _| {
            b.iter(|| {
                for &id in &ids {
                    sys.send_to(id, Value::int(7));
                }
            });
            sys.await_idle(Duration::from_secs(60));
        });
        sys.shutdown();
    }
    g.finish();
}

criterion_group!(benches, bench_broadcast_vs_explicit, bench_sender_side_cost);
criterion_main!(benches);
