//! E3 (Figure 3 / §7.3): the coordinator bus.
//!
//! Measures globally-ordered visibility changes across N simulated nodes
//! under both ordering protocols the paper cites (central sequencer and
//! Amoeba-style token bus), plus the cross-node request/response round
//! trip over the data plane.

use std::time::Duration;

use actorspace_atoms::path;
use actorspace_net::{Cluster, ClusterConfig, OrderingProtocol};
use actorspace_pattern::pattern;
use actorspace_runtime::{from_fn, Value};
use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion, Throughput};

fn visibility_storm(cluster: &Cluster, per_node: usize) {
    // Every node registers `per_node` workers; measure until coherent.
    let space = cluster.node(0).create_space(None);
    assert!(cluster.await_coherence(Duration::from_secs(30)));
    for (i, node) in cluster.nodes().iter().enumerate() {
        for k in 0..per_node {
            let w = node.spawn(from_fn(|_, _| {}));
            node.make_visible(w, &path(&format!("w/n{i}/k{k}")), space, None)
                .unwrap();
        }
    }
    assert!(cluster.await_coherence(Duration::from_secs(60)));
}

fn bench_ordered_visibility(c: &mut Criterion) {
    let mut g = c.benchmark_group("E3_ordered_visibility");
    // Each iteration boots a whole cluster; keep the group proportionate to
    // a CI host (the `experiments` binary measures the full 2/4/8 sweep).
    g.sample_size(10).measurement_time(Duration::from_secs(5));
    let per_node = 10usize;
    for nodes in [2usize, 4] {
        g.throughput(Throughput::Elements((nodes * per_node * 2) as u64));
        for (name, protocol) in [
            ("sequencer", OrderingProtocol::Sequencer),
            ("token_bus", OrderingProtocol::TokenBus),
        ] {
            g.bench_with_input(BenchmarkId::new(name, nodes), &nodes, |b, &n| {
                b.iter_with_setup(
                    || {
                        Cluster::new(ClusterConfig {
                            nodes: n,
                            protocol,
                            token_hop: Duration::from_micros(100),
                            ..ClusterConfig::default()
                        })
                    },
                    |cluster| {
                        visibility_storm(&cluster, per_node);
                        cluster.shutdown();
                    },
                );
            });
        }
    }
    g.finish();
}

fn bench_remote_round_trip(c: &mut Criterion) {
    let mut g = c.benchmark_group("E3_remote_round_trip");
    g.sample_size(10).measurement_time(Duration::from_secs(8));
    let cluster = Cluster::new(ClusterConfig {
        nodes: 2,
        ..ClusterConfig::default()
    });
    let (inbox, rx) = cluster.node(0).system().inbox();
    let space = cluster.node(0).create_space(None);
    let echo = cluster.node(1).spawn(from_fn(move |ctx, msg| {
        ctx.send_addr(inbox, msg.body);
    }));
    cluster
        .node(1)
        .make_visible(echo, &path("echo"), space, None)
        .unwrap();
    assert!(cluster.await_coherence(Duration::from_secs(30)));
    let pat = pattern("echo");
    g.bench_function("pattern_send_cross_node", |b| {
        b.iter(|| {
            cluster
                .node(0)
                .send_pattern(&pat, space, Value::int(1))
                .unwrap();
            rx.recv_timeout(Duration::from_secs(30)).unwrap();
        });
    });
    g.finish();
    cluster.shutdown();
}

criterion_group!(benches, bench_ordered_visibility, bench_remote_round_trip);
criterion_main!(benches);
