//! Offline stand-in for the `rand` crate (0.8 API subset). The build
//! container has no crates.io access, so this implements exactly what the
//! workspace uses: `SmallRng` (a xoshiro256++ generator), `thread_rng`,
//! and the `Rng`/`RngCore`/`SeedableRng` trait methods the code calls
//! (`gen`, `gen_bool`, `gen_range`, `fill_bytes`).

use std::ops::Range;

/// Low-level generator interface.
pub trait RngCore {
    /// The next 32 random bits.
    fn next_u32(&mut self) -> u32;
    /// The next 64 random bits.
    fn next_u64(&mut self) -> u64;
    /// Fills `dest` with random bytes.
    fn fill_bytes(&mut self, dest: &mut [u8]) {
        let mut chunks = dest.chunks_exact_mut(8);
        for chunk in &mut chunks {
            chunk.copy_from_slice(&self.next_u64().to_le_bytes());
        }
        let rem = chunks.into_remainder();
        if !rem.is_empty() {
            let bytes = self.next_u64().to_le_bytes();
            rem.copy_from_slice(&bytes[..rem.len()]);
        }
    }
}

/// Types producible uniformly from raw random bits (the `Standard`
/// distribution of real rand).
pub trait Standard: Sized {
    /// Draws one value.
    fn draw<R: RngCore + ?Sized>(rng: &mut R) -> Self;
}

impl Standard for f64 {
    fn draw<R: RngCore + ?Sized>(rng: &mut R) -> f64 {
        // 53 uniform bits in [0, 1).
        (rng.next_u64() >> 11) as f64 * (1.0 / (1u64 << 53) as f64)
    }
}

impl Standard for f32 {
    fn draw<R: RngCore + ?Sized>(rng: &mut R) -> f32 {
        (rng.next_u32() >> 8) as f32 * (1.0 / (1u32 << 24) as f32)
    }
}

impl Standard for bool {
    fn draw<R: RngCore + ?Sized>(rng: &mut R) -> bool {
        rng.next_u32() & 1 == 1
    }
}

macro_rules! impl_standard_int {
    ($($t:ty),*) => {$(
        impl Standard for $t {
            fn draw<R: RngCore + ?Sized>(rng: &mut R) -> $t {
                rng.next_u64() as $t
            }
        }
    )*};
}
impl_standard_int!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

/// Ranges samplable by [`Rng::gen_range`].
pub trait SampleRange<T> {
    /// Draws one value from the range.
    fn sample<R: RngCore + ?Sized>(self, rng: &mut R) -> T;
}

macro_rules! impl_sample_range_int {
    ($($t:ty),*) => {$(
        impl SampleRange<$t> for Range<$t> {
            fn sample<R: RngCore + ?Sized>(self, rng: &mut R) -> $t {
                assert!(self.start < self.end, "gen_range on empty range");
                let span = (self.end as u128).wrapping_sub(self.start as u128);
                let offset = (rng.next_u64() as u128) % span;
                (self.start as u128).wrapping_add(offset) as $t
            }
        }
    )*};
}
impl_sample_range_int!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

impl SampleRange<f64> for Range<f64> {
    fn sample<R: RngCore + ?Sized>(self, rng: &mut R) -> f64 {
        assert!(self.start < self.end, "gen_range on empty range");
        self.start + f64::draw(rng) * (self.end - self.start)
    }
}

/// High-level convenience methods, blanket-implemented for every
/// [`RngCore`].
pub trait Rng: RngCore {
    /// A uniform value of type `T`.
    fn gen<T: Standard>(&mut self) -> T
    where
        Self: Sized,
    {
        T::draw(self)
    }

    /// True with probability `p` (clamped to `[0, 1]`).
    fn gen_bool(&mut self, p: f64) -> bool
    where
        Self: Sized,
    {
        f64::draw(self) < p.clamp(0.0, 1.0)
    }

    /// A uniform value in `range`.
    fn gen_range<T, S: SampleRange<T>>(&mut self, range: S) -> T
    where
        Self: Sized,
    {
        range.sample(self)
    }
}

impl<R: RngCore + ?Sized> Rng for R {}

/// Seedable generators.
pub trait SeedableRng: Sized {
    /// Builds a generator from a 64-bit seed (via splitmix64 expansion).
    fn seed_from_u64(seed: u64) -> Self;

    /// Builds a generator from environmental entropy (time + address).
    fn from_entropy() -> Self {
        Self::seed_from_u64(entropy_seed())
    }
}

fn entropy_seed() -> u64 {
    use std::sync::atomic::{AtomicU64, Ordering};
    static COUNTER: AtomicU64 = AtomicU64::new(0);
    let t = std::time::SystemTime::now()
        .duration_since(std::time::UNIX_EPOCH)
        .map(|d| d.as_nanos() as u64)
        .unwrap_or(0x9e3779b97f4a7c15);
    let c = COUNTER.fetch_add(0x9e3779b97f4a7c15, Ordering::Relaxed);
    let local = 0u8;
    t ^ c.rotate_left(17) ^ (&local as *const u8 as u64).rotate_left(31)
}

/// Named generators.
pub mod rngs {
    use super::{RngCore, SeedableRng};

    /// A small, fast, non-cryptographic generator (xoshiro256++).
    #[derive(Debug, Clone)]
    pub struct SmallRng {
        s: [u64; 4],
    }

    impl SmallRng {
        fn splitmix64(state: &mut u64) -> u64 {
            *state = state.wrapping_add(0x9e3779b97f4a7c15);
            let mut z = *state;
            z = (z ^ (z >> 30)).wrapping_mul(0xbf58476d1ce4e5b9);
            z = (z ^ (z >> 27)).wrapping_mul(0x94d049bb133111eb);
            z ^ (z >> 31)
        }
    }

    impl SeedableRng for SmallRng {
        fn seed_from_u64(seed: u64) -> SmallRng {
            let mut state = seed;
            let mut s = [0u64; 4];
            for slot in &mut s {
                *slot = SmallRng::splitmix64(&mut state);
            }
            // xoshiro must not start from the all-zero state.
            if s == [0; 4] {
                s[0] = 0x9e3779b97f4a7c15;
            }
            SmallRng { s }
        }
    }

    impl RngCore for SmallRng {
        fn next_u64(&mut self) -> u64 {
            let s = &mut self.s;
            let result = s[0].wrapping_add(s[3]).rotate_left(23).wrapping_add(s[0]);
            let t = s[1] << 17;
            s[2] ^= s[0];
            s[3] ^= s[1];
            s[1] ^= s[2];
            s[0] ^= s[3];
            s[2] ^= t;
            s[3] = s[3].rotate_left(45);
            result
        }

        fn next_u32(&mut self) -> u32 {
            (self.next_u64() >> 32) as u32
        }
    }
}

/// A per-call entropy-seeded generator (the stub has no thread-local
/// state; each call returns a freshly seeded [`rngs::SmallRng`]).
pub fn thread_rng() -> rngs::SmallRng {
    rngs::SmallRng::from_entropy()
}

/// `rand::prelude` subset.
pub mod prelude {
    pub use crate::rngs::SmallRng;
    pub use crate::{thread_rng, Rng, RngCore, SeedableRng};
}

#[cfg(test)]
mod tests {
    use super::rngs::SmallRng;
    use super::*;

    #[test]
    fn deterministic_from_seed() {
        let mut a = SmallRng::seed_from_u64(42);
        let mut b = SmallRng::seed_from_u64(42);
        for _ in 0..100 {
            assert_eq!(a.next_u64(), b.next_u64());
        }
    }

    #[test]
    fn gen_bool_respects_probability() {
        let mut rng = SmallRng::seed_from_u64(7);
        let hits = (0..10_000).filter(|_| rng.gen_bool(0.3)).count();
        assert!((2500..3500).contains(&hits), "got {hits}");
        assert!(!(0..100).any(|_| rng.gen_bool(0.0)));
        assert!((0..100).all(|_| rng.gen_bool(1.0)));
    }

    #[test]
    fn gen_range_stays_in_bounds() {
        let mut rng = SmallRng::seed_from_u64(9);
        for _ in 0..1000 {
            let v: usize = rng.gen_range(3..17);
            assert!((3..17).contains(&v));
            let f: f64 = rng.gen_range(-2.0..2.0);
            assert!((-2.0..2.0).contains(&f));
        }
        // All values of a small range get hit.
        let seen: std::collections::HashSet<usize> =
            (0..200).map(|_| rng.gen_range(0..4)).collect();
        assert_eq!(seen.len(), 4);
    }

    #[test]
    fn fill_bytes_fills_every_byte_eventually() {
        let mut rng = SmallRng::seed_from_u64(1);
        let mut buf = [0u8; 33];
        rng.fill_bytes(&mut buf);
        assert!(buf.iter().any(|&b| b != 0));
    }

    #[test]
    fn gen_f64_is_unit_interval() {
        let mut rng = SmallRng::seed_from_u64(5);
        for _ in 0..1000 {
            let x: f64 = rng.gen();
            assert!((0.0..1.0).contains(&x));
        }
    }
}
