//! Stub `#[derive(Serialize, Deserialize)]` macros for the vendored serde
//! stand-in (see vendor/README.md). The workspace derives these traits on
//! plain id/bitflag types but never serializes them through a generic
//! format (the runtime codec is hand-written), so the derived impls only
//! need to exist, not to encode real data: `Serialize` writes a unit,
//! `Deserialize` reports an error.
//!
//! Implemented without `syn`/`quote` (unavailable offline): the macro
//! scans the raw token stream for the `struct`/`enum` name and splices it
//! into a fixed impl template. Generic types are not supported.

use proc_macro::{TokenStream, TokenTree};

/// Extracts the type name following the `struct` / `enum` / `union`
/// keyword, skipping attributes and visibility.
fn type_name(input: TokenStream) -> String {
    let mut saw_kw = false;
    for tt in input {
        match tt {
            TokenTree::Ident(id) => {
                let s = id.to_string();
                if saw_kw {
                    return s;
                }
                if s == "struct" || s == "enum" || s == "union" {
                    saw_kw = true;
                }
            }
            _ => continue,
        }
    }
    panic!("serde_derive stub: could not find type name");
}

/// Derives a unit-encoding `Serialize` impl.
#[proc_macro_derive(Serialize)]
pub fn derive_serialize(input: TokenStream) -> TokenStream {
    let name = type_name(input);
    format!(
        "impl ::serde::Serialize for {name} {{\
             fn serialize<S: ::serde::Serializer>(&self, serializer: S)\
                 -> ::core::result::Result<S::Ok, S::Error> {{\
                 serializer.serialize_unit()\
             }}\
         }}"
    )
    .parse()
    .expect("serde_derive stub: generated impl must parse")
}

/// Derives an always-erroring `Deserialize` impl.
#[proc_macro_derive(Deserialize)]
pub fn derive_deserialize(input: TokenStream) -> TokenStream {
    let name = type_name(input);
    format!(
        "impl<'de> ::serde::Deserialize<'de> for {name} {{\
             fn deserialize<D: ::serde::Deserializer<'de>>(_deserializer: D)\
                 -> ::core::result::Result<Self, D::Error> {{\
                 ::core::result::Result::Err(<D::Error as ::serde::de::Error>::custom(\
                     \"the vendored serde stub does not implement derived deserialization\",\
                 ))\
             }}\
         }}"
    )
    .parse()
    .expect("serde_derive stub: generated impl must parse")
}
