//! Offline stand-in for the `parking_lot` crate, implementing the subset of
//! its API this workspace uses on top of `std::sync`. The container this
//! repo builds in has no network access and no crates.io mirror, so the
//! real crate cannot be fetched; the semantics here match what the code
//! relies on (no poisoning, guard-based condvar waits).

use std::ops::{Deref, DerefMut};
use std::sync::atomic;
use std::time::{Duration, Instant};

/// A mutex that, unlike `std::sync::Mutex`, never poisons.
pub struct Mutex<T: ?Sized> {
    inner: std::sync::Mutex<T>,
}

impl<T> Mutex<T> {
    /// Creates a new mutex.
    pub const fn new(value: T) -> Mutex<T> {
        Mutex {
            inner: std::sync::Mutex::new(value),
        }
    }

    /// Consumes the mutex, returning the inner value.
    pub fn into_inner(self) -> T {
        self.inner.into_inner().unwrap_or_else(|p| p.into_inner())
    }
}

impl<T: ?Sized> Mutex<T> {
    /// Acquires the mutex, blocking until available.
    pub fn lock(&self) -> MutexGuard<'_, T> {
        MutexGuard {
            inner: self.inner.lock().unwrap_or_else(|p| p.into_inner()),
        }
    }

    /// Attempts to acquire the mutex without blocking.
    pub fn try_lock(&self) -> Option<MutexGuard<'_, T>> {
        match self.inner.try_lock() {
            Ok(g) => Some(MutexGuard { inner: g }),
            Err(std::sync::TryLockError::Poisoned(p)) => Some(MutexGuard {
                inner: p.into_inner(),
            }),
            Err(std::sync::TryLockError::WouldBlock) => None,
        }
    }

    /// Mutable access without locking (requires exclusive borrow).
    pub fn get_mut(&mut self) -> &mut T {
        self.inner.get_mut().unwrap_or_else(|p| p.into_inner())
    }
}

impl<T: Default> Default for Mutex<T> {
    fn default() -> Self {
        Mutex::new(T::default())
    }
}

impl<T: std::fmt::Debug> std::fmt::Debug for Mutex<T> {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self.try_lock() {
            Some(g) => f.debug_struct("Mutex").field("data", &*g).finish(),
            None => f.write_str("Mutex { <locked> }"),
        }
    }
}

/// RAII guard for [`Mutex`].
pub struct MutexGuard<'a, T: ?Sized> {
    inner: std::sync::MutexGuard<'a, T>,
}

impl<'a, T: ?Sized> MutexGuard<'a, T> {
    /// Projects the guard to a component of the protected value
    /// (parking_lot-style associated function: `MutexGuard::map(g, f)`).
    pub fn map<U: ?Sized>(
        mut orig: Self,
        f: impl FnOnce(&mut T) -> &mut U,
    ) -> MappedMutexGuard<'a, U> {
        let ptr: *mut U = f(&mut orig.inner);
        MappedMutexGuard {
            _held: Box::new(orig.inner),
            ptr,
        }
    }
}

impl<T: ?Sized> Deref for MutexGuard<'_, T> {
    type Target = T;
    fn deref(&self) -> &T {
        &self.inner
    }
}

impl<T: ?Sized> DerefMut for MutexGuard<'_, T> {
    fn deref_mut(&mut self) -> &mut T {
        &mut self.inner
    }
}

/// Marker for a guard kept alive only to hold its lock; the concrete
/// guard type is erased so [`MappedMutexGuard`] need not name `T`.
trait HeldLock {}
impl<T: ?Sized> HeldLock for std::sync::MutexGuard<'_, T> {}

/// RAII guard for a component of a mutex-protected value, produced by
/// [`MutexGuard::map`]. The original guard is boxed and kept alive for
/// the mapped guard's whole lifetime, so the pointer dereferences are
/// sound: the lock is held and the component was reborrowed from the
/// guard's exclusive access.
pub struct MappedMutexGuard<'a, T: ?Sized> {
    _held: Box<dyn HeldLock + 'a>,
    ptr: *mut T,
}

impl<T: ?Sized> Deref for MappedMutexGuard<'_, T> {
    type Target = T;
    fn deref(&self) -> &T {
        unsafe { &*self.ptr }
    }
}

impl<T: ?Sized> DerefMut for MappedMutexGuard<'_, T> {
    fn deref_mut(&mut self) -> &mut T {
        unsafe { &mut *self.ptr }
    }
}

/// A reader-writer lock without poisoning.
pub struct RwLock<T: ?Sized> {
    inner: std::sync::RwLock<T>,
}

impl<T> RwLock<T> {
    /// Creates a new lock.
    pub const fn new(value: T) -> RwLock<T> {
        RwLock {
            inner: std::sync::RwLock::new(value),
        }
    }

    /// Consumes the lock, returning the inner value.
    pub fn into_inner(self) -> T {
        self.inner.into_inner().unwrap_or_else(|p| p.into_inner())
    }
}

impl<T: ?Sized> RwLock<T> {
    /// Acquires shared read access.
    pub fn read(&self) -> RwLockReadGuard<'_, T> {
        RwLockReadGuard {
            inner: self.inner.read().unwrap_or_else(|p| p.into_inner()),
        }
    }

    /// Acquires exclusive write access.
    pub fn write(&self) -> RwLockWriteGuard<'_, T> {
        RwLockWriteGuard {
            inner: self.inner.write().unwrap_or_else(|p| p.into_inner()),
        }
    }

    /// Attempts to acquire shared read access without blocking.
    pub fn try_read(&self) -> Option<RwLockReadGuard<'_, T>> {
        match self.inner.try_read() {
            Ok(g) => Some(RwLockReadGuard { inner: g }),
            Err(std::sync::TryLockError::Poisoned(p)) => Some(RwLockReadGuard {
                inner: p.into_inner(),
            }),
            Err(std::sync::TryLockError::WouldBlock) => None,
        }
    }

    /// Attempts to acquire exclusive write access without blocking.
    pub fn try_write(&self) -> Option<RwLockWriteGuard<'_, T>> {
        match self.inner.try_write() {
            Ok(g) => Some(RwLockWriteGuard { inner: g }),
            Err(std::sync::TryLockError::Poisoned(p)) => Some(RwLockWriteGuard {
                inner: p.into_inner(),
            }),
            Err(std::sync::TryLockError::WouldBlock) => None,
        }
    }

    /// Mutable access without locking (requires exclusive borrow).
    pub fn get_mut(&mut self) -> &mut T {
        self.inner.get_mut().unwrap_or_else(|p| p.into_inner())
    }
}

impl<T: Default> Default for RwLock<T> {
    fn default() -> Self {
        RwLock::new(T::default())
    }
}

impl<T: std::fmt::Debug> std::fmt::Debug for RwLock<T> {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self.inner.try_read() {
            Ok(g) => f.debug_struct("RwLock").field("data", &*g).finish(),
            Err(_) => f.write_str("RwLock { <locked> }"),
        }
    }
}

/// RAII read guard for [`RwLock`].
pub struct RwLockReadGuard<'a, T: ?Sized> {
    inner: std::sync::RwLockReadGuard<'a, T>,
}

impl<T: ?Sized> Deref for RwLockReadGuard<'_, T> {
    type Target = T;
    fn deref(&self) -> &T {
        &self.inner
    }
}

/// RAII write guard for [`RwLock`].
pub struct RwLockWriteGuard<'a, T: ?Sized> {
    inner: std::sync::RwLockWriteGuard<'a, T>,
}

impl<T: ?Sized> Deref for RwLockWriteGuard<'_, T> {
    type Target = T;
    fn deref(&self) -> &T {
        &self.inner
    }
}

impl<T: ?Sized> DerefMut for RwLockWriteGuard<'_, T> {
    fn deref_mut(&mut self) -> &mut T {
        &mut self.inner
    }
}

/// Result of a timed condition-variable wait.
#[derive(Debug, Clone, Copy)]
pub struct WaitTimeoutResult {
    timed_out: bool,
}

impl WaitTimeoutResult {
    /// True when the wait returned because the timeout elapsed.
    pub fn timed_out(&self) -> bool {
        self.timed_out
    }
}

/// A condition variable usable with [`MutexGuard`] in place (parking_lot
/// style: the guard is re-acquired into the same binding).
pub struct Condvar {
    inner: std::sync::Condvar,
}

impl Condvar {
    /// Creates a new condition variable.
    pub const fn new() -> Condvar {
        Condvar {
            inner: std::sync::Condvar::new(),
        }
    }

    /// Wakes one waiter.
    pub fn notify_one(&self) {
        self.inner.notify_one();
    }

    /// Wakes all waiters.
    pub fn notify_all(&self) {
        self.inner.notify_all();
    }

    /// Blocks until notified, releasing the guard while waiting.
    pub fn wait<T>(&self, guard: &mut MutexGuard<'_, T>) {
        self.replace_guard(guard, |g| {
            let g = self.inner.wait(g).unwrap_or_else(|p| p.into_inner());
            (g, ())
        });
    }

    /// Blocks until notified or `timeout` elapses.
    pub fn wait_for<T>(
        &self,
        guard: &mut MutexGuard<'_, T>,
        timeout: Duration,
    ) -> WaitTimeoutResult {
        self.replace_guard(guard, |g| {
            let (g, r) = self
                .inner
                .wait_timeout(g, timeout)
                .unwrap_or_else(|p| p.into_inner());
            (
                g,
                WaitTimeoutResult {
                    timed_out: r.timed_out(),
                },
            )
        })
    }

    /// Blocks until notified or `deadline` is reached.
    pub fn wait_until<T>(
        &self,
        guard: &mut MutexGuard<'_, T>,
        deadline: Instant,
    ) -> WaitTimeoutResult {
        let timeout = deadline.saturating_duration_since(Instant::now());
        self.wait_for(guard, timeout)
    }

    /// Swaps the std guard out of `guard`, runs the wait, and writes the
    /// re-acquired guard back. The std guard is moved (never duplicated):
    /// `ptr::read` takes it out and `ptr::write` installs the replacement,
    /// and the closure cannot panic between the two except via the poison
    /// path, which `unwrap_or_else(into_inner)` converts into a value.
    fn replace_guard<'a, T, R>(
        &self,
        guard: &mut MutexGuard<'a, T>,
        f: impl FnOnce(std::sync::MutexGuard<'a, T>) -> (std::sync::MutexGuard<'a, T>, R),
    ) -> R {
        // An abort guard: if `f` somehow unwinds, the duplicated guard would
        // double-unlock, so escalate to abort instead.
        struct Bomb;
        impl Drop for Bomb {
            fn drop(&mut self) {
                atomic::compiler_fence(atomic::Ordering::SeqCst);
                std::process::abort();
            }
        }
        unsafe {
            let inner = std::ptr::read(&guard.inner);
            let bomb = Bomb;
            let (new_guard, result) = f(inner);
            std::mem::forget(bomb);
            std::ptr::write(&mut guard.inner, new_guard);
            result
        }
    }
}

impl Default for Condvar {
    fn default() -> Self {
        Condvar::new()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::Arc;

    #[test]
    fn mutex_and_rwlock_round_trip() {
        let m = Mutex::new(1);
        *m.lock() += 1;
        assert_eq!(*m.lock(), 2);
        let rw = RwLock::new(5);
        assert_eq!(*rw.read(), 5);
        *rw.write() = 6;
        assert_eq!(*rw.read(), 6);
    }

    #[test]
    fn condvar_wait_and_notify() {
        let pair = Arc::new((Mutex::new(false), Condvar::new()));
        let p2 = pair.clone();
        let t = std::thread::spawn(move || {
            let (lock, cv) = &*p2;
            let mut g = lock.lock();
            *g = true;
            drop(g);
            cv.notify_all();
        });
        let (lock, cv) = &*pair;
        let mut g = lock.lock();
        let deadline = Instant::now() + Duration::from_secs(5);
        while !*g {
            assert!(!cv.wait_until(&mut g, deadline).timed_out(), "timed out");
        }
        drop(g);
        t.join().unwrap();
    }

    #[test]
    fn mapped_guard_keeps_lock_held() {
        let m = Mutex::new((1u32, String::from("x")));
        let mut mapped = MutexGuard::map(m.lock(), |pair| &mut pair.1);
        mapped.push('y');
        assert!(m.try_lock().is_none(), "map must keep the mutex locked");
        drop(mapped);
        assert_eq!(m.lock().1, "xy");
    }

    #[test]
    fn rwlock_try_variants() {
        let rw = RwLock::new(7);
        {
            let r = rw.try_read().expect("uncontended try_read");
            assert_eq!(*r, 7);
            assert!(rw.try_write().is_none(), "reader blocks try_write");
        }
        {
            let mut w = rw.try_write().expect("uncontended try_write");
            *w = 8;
            assert!(rw.try_read().is_none(), "writer blocks try_read");
        }
        assert_eq!(*rw.read(), 8);
        let mut rw = rw;
        *rw.get_mut() = 9;
        assert_eq!(rw.into_inner(), 9);
    }

    #[test]
    fn wait_for_times_out() {
        let m = Mutex::new(());
        let cv = Condvar::new();
        let mut g = m.lock();
        let r = cv.wait_for(&mut g, Duration::from_millis(10));
        assert!(r.timed_out());
    }
}
