//! Offline stand-in for the `crossbeam` crate. Only `deque::Injector` (the
//! shared FIFO the runtime's workers steal from) is needed; it is backed by
//! a mutexed `VecDeque`, which is slower than the real lock-free deque but
//! semantically identical.

/// Work-stealing deque subset.
pub mod deque {
    use std::collections::VecDeque;
    use std::sync::atomic::{AtomicUsize, Ordering};
    use std::sync::Mutex;

    /// Outcome of a steal attempt.
    #[derive(Debug, Clone, Copy, PartialEq, Eq)]
    pub enum Steal<T> {
        /// The queue was empty.
        Empty,
        /// One task was stolen.
        Success(T),
        /// Contention; retry.
        Retry,
    }

    /// A FIFO injector queue shared by all workers.
    pub struct Injector<T> {
        queue: Mutex<VecDeque<T>>,
        len: AtomicUsize,
    }

    impl<T> Injector<T> {
        /// Creates an empty queue.
        pub fn new() -> Injector<T> {
            Injector {
                queue: Mutex::new(VecDeque::new()),
                len: AtomicUsize::new(0),
            }
        }

        /// Pushes a task.
        pub fn push(&self, task: T) {
            let mut q = self.queue.lock().unwrap_or_else(|p| p.into_inner());
            q.push_back(task);
            self.len.store(q.len(), Ordering::Release);
        }

        /// Steals the oldest task, if any.
        pub fn steal(&self) -> Steal<T> {
            let mut q = self.queue.lock().unwrap_or_else(|p| p.into_inner());
            match q.pop_front() {
                Some(t) => {
                    self.len.store(q.len(), Ordering::Release);
                    Steal::Success(t)
                }
                None => Steal::Empty,
            }
        }

        /// True when no tasks are queued (racy, as in real crossbeam).
        pub fn is_empty(&self) -> bool {
            self.len.load(Ordering::Acquire) == 0
        }

        /// Number of queued tasks (racy snapshot).
        pub fn len(&self) -> usize {
            self.len.load(Ordering::Acquire)
        }
    }

    impl<T> Default for Injector<T> {
        fn default() -> Self {
            Injector::new()
        }
    }

    #[cfg(test)]
    mod tests {
        use super::*;

        #[test]
        fn fifo_order_and_empty() {
            let inj = Injector::new();
            assert!(inj.is_empty());
            assert_eq!(inj.steal(), Steal::Empty);
            inj.push(1);
            inj.push(2);
            assert_eq!(inj.len(), 2);
            assert_eq!(inj.steal(), Steal::Success(1));
            assert_eq!(inj.steal(), Steal::Success(2));
            assert!(inj.is_empty());
        }
    }
}
