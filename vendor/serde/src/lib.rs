//! Offline stand-in for `serde`: just enough trait surface for the
//! workspace's derives and the one hand-written impl pair (`Atom`).
//! No real serialization format ships with this stub — the runtime's wire
//! codec is hand-written (`actorspace-runtime/src/codec.rs`) precisely so
//! the workspace never needs serde at runtime.

use std::fmt::Display;

pub use serde_derive::{Deserialize, Serialize};

/// Serializable types.
pub trait Serialize {
    /// Serializes `self` into the given serializer.
    fn serialize<S: Serializer>(&self, serializer: S) -> Result<S::Ok, S::Error>;
}

/// Deserializable types.
pub trait Deserialize<'de>: Sized {
    /// Deserializes a value from the given deserializer.
    fn deserialize<D: Deserializer<'de>>(deserializer: D) -> Result<Self, D::Error>;
}

/// Output formats.
pub trait Serializer: Sized {
    /// Success value.
    type Ok;
    /// Failure value.
    type Error;

    /// Writes a string.
    fn serialize_str(self, v: &str) -> Result<Self::Ok, Self::Error>;

    /// Writes a unit value (what stub derives emit).
    fn serialize_unit(self) -> Result<Self::Ok, Self::Error>;
}

/// Input formats.
pub trait Deserializer<'de>: Sized {
    /// Failure value.
    type Error: de::Error;

    /// Reads a string.
    fn deserialize_string(self) -> Result<String, Self::Error>;
}

/// Deserialization support traits.
pub mod de {
    use super::Display;

    /// Errors constructible from a message, used by stub derives.
    pub trait Error: Sized {
        /// Builds an error carrying `msg`.
        fn custom<T: Display>(msg: T) -> Self;
    }

    impl Error for String {
        fn custom<T: Display>(msg: T) -> Self {
            msg.to_string()
        }
    }
}

impl<'de> Deserialize<'de> for String {
    fn deserialize<D: Deserializer<'de>>(deserializer: D) -> Result<Self, D::Error> {
        deserializer.deserialize_string()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    /// A serializer capturing strings, to exercise the trait plumbing.
    struct Capture;
    impl Serializer for Capture {
        type Ok = String;
        type Error = String;
        fn serialize_str(self, v: &str) -> Result<String, String> {
            Ok(format!("{v:?}"))
        }
        fn serialize_unit(self) -> Result<String, String> {
            Ok("null".into())
        }
    }

    struct StrSource(&'static str);
    impl<'de> Deserializer<'de> for StrSource {
        type Error = String;
        fn deserialize_string(self) -> Result<String, String> {
            Ok(self.0.to_owned())
        }
    }

    #[derive(Serialize, Deserialize, PartialEq, Debug)]
    struct Id(u64);

    #[test]
    fn derived_serialize_emits_unit() {
        assert_eq!(Id(7).serialize(Capture).unwrap(), "null");
    }

    #[test]
    fn derived_deserialize_errors() {
        assert!(Id::deserialize(StrSource("x")).is_err());
    }

    #[test]
    fn string_round_trip() {
        assert_eq!(String::deserialize(StrSource("hello")).unwrap(), "hello");
    }
}
