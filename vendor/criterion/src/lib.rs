//! Offline stand-in for the `criterion` benchmark harness, implementing the
//! API subset the workspace's benches use: `Criterion`, `benchmark_group`
//! (with `sample_size` / `measurement_time` / `throughput` /
//! `bench_function` / `bench_with_input` / `finish`), `Bencher::iter` /
//! `iter_with_setup`, `BenchmarkId`, `Throughput`, and the
//! `criterion_group!` / `criterion_main!` macros.
//!
//! Differences from real criterion, by design: no statistical analysis,
//! plotting, or baseline comparison. Each benchmark runs a warm-up call,
//! sizes an iteration batch to an abbreviated time budget (a fraction of
//! the requested `measurement_time`, so full suites stay fast), and prints
//! mean/min/max per-iteration times to stdout.

pub use std::hint::black_box;

use std::fmt::Display;
use std::time::{Duration, Instant};

/// How work is counted for throughput reporting.
#[derive(Debug, Clone, Copy)]
pub enum Throughput {
    /// Elements processed per iteration.
    Elements(u64),
    /// Bytes processed per iteration.
    Bytes(u64),
}

/// A benchmark identifier: a function name, a parameter, or both.
#[derive(Debug, Clone)]
pub struct BenchmarkId {
    id: String,
}

impl BenchmarkId {
    /// An id combining a function name and a parameter value.
    pub fn new<P: Display>(function_name: &str, parameter: P) -> BenchmarkId {
        BenchmarkId {
            id: format!("{function_name}/{parameter}"),
        }
    }

    /// An id that is just a parameter value.
    pub fn from_parameter<P: Display>(parameter: P) -> BenchmarkId {
        BenchmarkId {
            id: parameter.to_string(),
        }
    }
}

impl Display for BenchmarkId {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str(&self.id)
    }
}

/// The timing context handed to benchmark closures.
pub struct Bencher {
    sample_size: usize,
    budget: Duration,
    samples: Vec<Duration>,
}

impl Bencher {
    /// Times `routine`, amortized over a batch of iterations.
    pub fn iter<O, F: FnMut() -> O>(&mut self, mut routine: F) {
        // Warm-up and batch sizing: aim for `sample_size` samples within
        // the (already abbreviated) budget.
        let warm = Instant::now();
        black_box(routine());
        let one = warm.elapsed().max(Duration::from_nanos(1));
        let per_sample = self.budget / self.sample_size.max(1) as u32;
        let iters = (per_sample.as_nanos() / one.as_nanos()).clamp(1, 1_000_000) as u64;
        for _ in 0..self.sample_size {
            let start = Instant::now();
            for _ in 0..iters {
                black_box(routine());
            }
            self.samples.push(start.elapsed() / iters as u32);
        }
    }

    /// Times `routine` on a fresh `setup()` value each iteration; only the
    /// routine is timed.
    pub fn iter_with_setup<I, O, S, F>(&mut self, mut setup: S, mut routine: F)
    where
        S: FnMut() -> I,
        F: FnMut(I) -> O,
    {
        // Setup is usually the expensive part; run one sample per
        // measurement round, `sample_size` rounds.
        for _ in 0..self.sample_size.max(1) {
            let input = setup();
            let start = Instant::now();
            black_box(routine(input));
            self.samples.push(start.elapsed());
        }
    }

    fn report(&self, id: &str, throughput: Option<Throughput>) {
        if self.samples.is_empty() {
            println!("{id:<40} (no samples)");
            return;
        }
        let total: Duration = self.samples.iter().sum();
        let mean = total / self.samples.len() as u32;
        let min = self.samples.iter().min().copied().unwrap_or_default();
        let max = self.samples.iter().max().copied().unwrap_or_default();
        let rate = match throughput {
            Some(Throughput::Elements(n)) if mean > Duration::ZERO => {
                format!("  {:>12.0} elem/s", n as f64 / mean.as_secs_f64())
            }
            Some(Throughput::Bytes(n)) if mean > Duration::ZERO => {
                format!("  {:>12.0} B/s", n as f64 / mean.as_secs_f64())
            }
            _ => String::new(),
        };
        println!("{id:<40} time: [{min:>10.2?} {mean:>10.2?} {max:>10.2?}]{rate}");
    }
}

/// A named group of related benchmarks sharing configuration.
pub struct BenchmarkGroup {
    name: String,
    sample_size: usize,
    measurement_time: Duration,
    throughput: Option<Throughput>,
}

impl BenchmarkGroup {
    /// Sets the number of samples per benchmark.
    pub fn sample_size(&mut self, n: usize) -> &mut Self {
        self.sample_size = n.max(1);
        self
    }

    /// Sets the per-benchmark time budget. The stub runs an abbreviated
    /// fraction of it so whole suites finish quickly.
    pub fn measurement_time(&mut self, t: Duration) -> &mut Self {
        self.measurement_time = t;
        self
    }

    /// Sets throughput accounting for subsequent benchmarks.
    pub fn throughput(&mut self, t: Throughput) -> &mut Self {
        self.throughput = Some(t);
        self
    }

    fn run<F: FnMut(&mut Bencher)>(&mut self, id: String, mut f: F) {
        let mut b = Bencher {
            sample_size: self.sample_size,
            // Abbreviated budget: benches stay representative but the full
            // suite completes in CI-friendly time.
            budget: (self.measurement_time / 8)
                .clamp(Duration::from_millis(20), Duration::from_millis(500)),
            samples: Vec::new(),
        };
        f(&mut b);
        b.report(&format!("{}/{}", self.name, id), self.throughput);
    }

    /// Runs one benchmark.
    pub fn bench_function<N: Display, F: FnMut(&mut Bencher)>(&mut self, id: N, f: F) {
        self.run(id.to_string(), f);
    }

    /// Runs one parameterized benchmark.
    pub fn bench_with_input<N: Display, I: ?Sized, F>(&mut self, id: N, input: &I, mut f: F)
    where
        F: FnMut(&mut Bencher, &I),
    {
        self.run(id.to_string(), |b| f(b, input));
    }

    /// Ends the group.
    pub fn finish(self) {}
}

/// The top-level benchmark driver.
#[derive(Default)]
pub struct Criterion {}

impl Criterion {
    /// Opens a named benchmark group.
    pub fn benchmark_group<N: Into<String>>(&mut self, name: N) -> BenchmarkGroup {
        BenchmarkGroup {
            name: name.into(),
            sample_size: 10,
            measurement_time: Duration::from_secs(5),
            throughput: None,
        }
    }

    /// Runs a single ungrouped benchmark.
    pub fn bench_function<N: Display, F: FnMut(&mut Bencher)>(&mut self, id: N, f: F) {
        let mut g = self.benchmark_group("bench");
        g.bench_function(id, f);
        g.finish();
    }
}

/// Bundles benchmark functions into a runnable group function.
#[macro_export]
macro_rules! criterion_group {
    ($name:ident, $($target:path),+ $(,)?) => {
        pub fn $name() {
            let mut criterion = $crate::Criterion::default();
            $($target(&mut criterion);)+
        }
    };
}

/// Generates `main` running the given groups.
#[macro_export]
macro_rules! criterion_main {
    ($($group:path),+ $(,)?) => {
        fn main() {
            $($group();)+
        }
    };
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn group_runs_and_reports() {
        let mut c = Criterion::default();
        let mut g = c.benchmark_group("demo");
        g.sample_size(3)
            .measurement_time(Duration::from_millis(100));
        g.throughput(Throughput::Elements(10));
        let mut runs = 0u32;
        g.bench_function("count", |b| b.iter(|| runs += 1));
        assert!(runs > 0);
        g.bench_with_input(BenchmarkId::new("param", 4), &4u32, |b, &x| {
            b.iter(|| black_box(x * 2))
        });
        g.finish();
    }

    #[test]
    fn iter_with_setup_times_only_routine() {
        let mut c = Criterion::default();
        let mut g = c.benchmark_group("setup");
        g.sample_size(2);
        g.bench_function("sum", |b| {
            b.iter_with_setup(|| vec![1u64, 2, 3], |v| v.iter().sum::<u64>())
        });
        g.finish();
    }

    #[test]
    fn ids_render() {
        assert_eq!(BenchmarkId::new("f", 3).to_string(), "f/3");
        assert_eq!(BenchmarkId::from_parameter("x").to_string(), "x");
    }
}
