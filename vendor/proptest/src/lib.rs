//! Offline stand-in for the `proptest` crate, implementing the subset the
//! workspace's property tests use: `proptest!`, `prop_oneof!`,
//! `prop_assert!`/`prop_assert_eq!`, `Just`, `any::<T>()`, range and tuple
//! strategies, string-pattern strategies (a simplified regex generator),
//! `prop_map`, `prop_recursive`, `collection::vec`, and `option::of`.
//!
//! Differences from real proptest, by design:
//! - **No shrinking.** A failing case reports its inputs (via the panic
//!   message) but is not minimized.
//! - **Deterministic seeding.** Each test function derives its RNG seed from
//!   its module path, name, and case index, so runs are reproducible without
//!   a persistence file.
//! - String strategies interpret only the pattern shapes used in-tree
//!   (char classes, escapes, `{m,n}` counts), not full regex syntax.

/// Test-runner plumbing: configuration and the per-case RNG.
pub mod test_runner {
    use rand::rngs::SmallRng;
    use rand::{RngCore, SeedableRng};

    /// Per-test configuration (field subset of real proptest's `Config`).
    #[derive(Debug, Clone)]
    pub struct ProptestConfig {
        /// Number of random cases to run per test.
        pub cases: u32,
        /// Accepted for API compatibility; the stub never shrinks.
        pub max_shrink_iters: u32,
        /// Accepted for API compatibility; the stub never rejects.
        pub max_global_rejects: u32,
    }

    impl Default for ProptestConfig {
        fn default() -> Self {
            ProptestConfig {
                cases: 256,
                max_shrink_iters: 0,
                max_global_rejects: 1024,
            }
        }
    }

    impl ProptestConfig {
        /// A default configuration running `cases` cases.
        pub fn with_cases(cases: u32) -> Self {
            ProptestConfig {
                cases,
                ..ProptestConfig::default()
            }
        }
    }

    /// The RNG handed to strategies, seeded deterministically per case.
    pub struct TestRng {
        inner: SmallRng,
    }

    impl TestRng {
        /// Builds the RNG for case number `case` of the test `name`
        /// (conventionally `module_path!()::fn_name`).
        pub fn for_case(name: &str, case: u32) -> TestRng {
            // FNV-1a over the test name, then golden-ratio case mixing.
            let mut h: u64 = 0xcbf2_9ce4_8422_2325;
            for b in name.bytes() {
                h ^= u64::from(b);
                h = h.wrapping_mul(0x0000_0100_0000_01b3);
            }
            let seed = h ^ u64::from(case).wrapping_mul(0x9e37_79b9_7f4a_7c15);
            TestRng {
                inner: SmallRng::seed_from_u64(seed),
            }
        }
    }

    impl RngCore for TestRng {
        fn next_u32(&mut self) -> u32 {
            self.inner.next_u32()
        }
        fn next_u64(&mut self) -> u64 {
            self.inner.next_u64()
        }
    }
}

/// The `Strategy` trait and combinators.
pub mod strategy {
    use std::marker::PhantomData;
    use std::ops::Range;
    use std::sync::Arc;

    use rand::Rng;

    use crate::test_runner::TestRng;

    /// A generator of random values of type `Self::Value`.
    pub trait Strategy {
        /// The type of value this strategy produces.
        type Value;

        /// Draws one value.
        fn generate(&self, rng: &mut TestRng) -> Self::Value;

        /// Maps generated values through `f`.
        fn prop_map<O, F>(self, f: F) -> Map<Self, F>
        where
            Self: Sized,
            F: Fn(Self::Value) -> O,
        {
            Map { base: self, f }
        }

        /// Erases the concrete strategy type behind a cloneable handle.
        fn boxed(self) -> BoxedStrategy<Self::Value>
        where
            Self: Sized + 'static,
            Self::Value: 'static,
        {
            BoxedStrategy(Arc::new(self))
        }

        /// Builds recursive values: `f` receives a strategy for "smaller"
        /// values (bottoming out at `self`) and returns the composite
        /// strategy. `depth` bounds the nesting; the size hints are accepted
        /// for API compatibility but unused (generation is depth-bounded,
        /// which is enough to keep in-tree values small).
        fn prop_recursive<F, S>(
            self,
            depth: u32,
            _desired_size: u32,
            _expected_branch_size: u32,
            f: F,
        ) -> BoxedStrategy<Self::Value>
        where
            Self: Sized + 'static,
            Self::Value: 'static,
            F: Fn(BoxedStrategy<Self::Value>) -> S,
            S: Strategy<Value = Self::Value> + 'static,
        {
            let leaf = self.boxed();
            let mut current = leaf.clone();
            for _ in 0..depth {
                let deeper = f(current).boxed();
                current = Union::new(vec![leaf.clone(), deeper]).boxed();
            }
            current
        }
    }

    /// Object-safe core of [`Strategy`], for type erasure.
    trait DynStrategy {
        type Value;
        fn dyn_generate(&self, rng: &mut TestRng) -> Self::Value;
    }

    impl<S: Strategy> DynStrategy for S {
        type Value = S::Value;
        fn dyn_generate(&self, rng: &mut TestRng) -> S::Value {
            self.generate(rng)
        }
    }

    /// A cloneable, type-erased strategy handle.
    pub struct BoxedStrategy<T>(Arc<dyn DynStrategy<Value = T>>);

    impl<T> Clone for BoxedStrategy<T> {
        fn clone(&self) -> Self {
            BoxedStrategy(Arc::clone(&self.0))
        }
    }

    impl<T> Strategy for BoxedStrategy<T> {
        type Value = T;
        fn generate(&self, rng: &mut TestRng) -> T {
            self.0.dyn_generate(rng)
        }
    }

    /// Always yields a clone of the wrapped value.
    #[derive(Debug, Clone)]
    pub struct Just<T: Clone>(pub T);

    impl<T: Clone> Strategy for Just<T> {
        type Value = T;
        fn generate(&self, _rng: &mut TestRng) -> T {
            self.0.clone()
        }
    }

    /// The result of [`Strategy::prop_map`].
    pub struct Map<S, F> {
        base: S,
        f: F,
    }

    impl<S, F, O> Strategy for Map<S, F>
    where
        S: Strategy,
        F: Fn(S::Value) -> O,
    {
        type Value = O;
        fn generate(&self, rng: &mut TestRng) -> O {
            (self.f)(self.base.generate(rng))
        }
    }

    /// Uniform choice between alternative strategies (`prop_oneof!`).
    pub struct Union<T> {
        arms: Vec<BoxedStrategy<T>>,
    }

    impl<T> Union<T> {
        /// Builds a union; `arms` must be non-empty.
        pub fn new(arms: Vec<BoxedStrategy<T>>) -> Union<T> {
            assert!(!arms.is_empty(), "prop_oneof! needs at least one arm");
            Union { arms }
        }
    }

    impl<T> Strategy for Union<T> {
        type Value = T;
        fn generate(&self, rng: &mut TestRng) -> T {
            let i = rng.gen_range(0..self.arms.len());
            self.arms[i].generate(rng)
        }
    }

    macro_rules! impl_range_strategy {
        ($($t:ty),*) => {$(
            impl Strategy for Range<$t> {
                type Value = $t;
                fn generate(&self, rng: &mut TestRng) -> $t {
                    rng.gen_range(self.start..self.end)
                }
            }
        )*};
    }
    impl_range_strategy!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize, f64);

    macro_rules! impl_tuple_strategy {
        ($(($($s:ident . $idx:tt),+))*) => {$(
            impl<$($s: Strategy),+> Strategy for ($($s,)+) {
                type Value = ($($s::Value,)+);
                fn generate(&self, rng: &mut TestRng) -> Self::Value {
                    ($(self.$idx.generate(rng),)+)
                }
            }
        )*};
    }
    impl_tuple_strategy! {
        (A.0, B.1)
        (A.0, B.1, C.2)
        (A.0, B.1, C.2, D.3)
        (A.0, B.1, C.2, D.3, E.4)
        (A.0, B.1, C.2, D.3, E.4, F.5)
    }

    /// String-pattern strategies: a `&str` literal is interpreted as a
    /// simplified regex and generates matching strings.
    impl<'a> Strategy for &'a str {
        type Value = String;
        fn generate(&self, rng: &mut TestRng) -> String {
            crate::string::generate(self, rng)
        }
    }

    /// `any::<T>()` support.
    pub mod arbitrary {
        use super::{PhantomData, Rng, Strategy, TestRng};

        /// Types with a canonical "any value" strategy.
        pub trait Arbitrary: Sized {
            /// Draws an arbitrary value.
            fn arbitrary(rng: &mut TestRng) -> Self;
        }

        macro_rules! impl_arbitrary_int {
            ($($t:ty),*) => {$(
                impl Arbitrary for $t {
                    fn arbitrary(rng: &mut TestRng) -> $t {
                        rng.gen::<$t>()
                    }
                }
            )*};
        }
        impl_arbitrary_int!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

        impl Arbitrary for bool {
            fn arbitrary(rng: &mut TestRng) -> bool {
                rng.gen::<bool>()
            }
        }

        impl Arbitrary for f64 {
            fn arbitrary(rng: &mut TestRng) -> f64 {
                // Finite values across a wide magnitude range.
                let mag = rng.gen::<f64>() * 2e18 - 1e18;
                if mag.is_finite() {
                    mag
                } else {
                    0.0
                }
            }
        }

        impl Arbitrary for f32 {
            fn arbitrary(rng: &mut TestRng) -> f32 {
                rng.gen::<f32>() * 2e9 - 1e9
            }
        }

        impl Arbitrary for char {
            fn arbitrary(rng: &mut TestRng) -> char {
                char::from_u32(rng.gen_range(0x20u32..0x7f)).unwrap_or('x')
            }
        }

        /// The strategy returned by [`any`].
        pub struct Any<T>(pub(crate) PhantomData<T>);

        impl<T: Arbitrary> Strategy for Any<T> {
            type Value = T;
            fn generate(&self, rng: &mut TestRng) -> T {
                T::arbitrary(rng)
            }
        }

        /// A strategy for arbitrary values of `T`.
        pub fn any<T: Arbitrary>() -> Any<T> {
            Any(PhantomData)
        }
    }
}

/// Collection strategies.
pub mod collection {
    use std::ops::Range;

    use rand::Rng;

    use crate::strategy::Strategy;
    use crate::test_runner::TestRng;

    /// The strategy returned by [`vec`].
    pub struct VecStrategy<S> {
        element: S,
        size: Range<usize>,
    }

    impl<S: Strategy> Strategy for VecStrategy<S> {
        type Value = Vec<S::Value>;
        fn generate(&self, rng: &mut TestRng) -> Vec<S::Value> {
            let len = if self.size.is_empty() {
                self.size.start
            } else {
                rng.gen_range(self.size.start..self.size.end)
            };
            (0..len).map(|_| self.element.generate(rng)).collect()
        }
    }

    /// A strategy for vectors whose length falls in `size` and whose
    /// elements come from `element`.
    pub fn vec<S: Strategy>(element: S, size: Range<usize>) -> VecStrategy<S> {
        VecStrategy { element, size }
    }
}

/// Option strategies.
pub mod option {
    use rand::Rng;

    use crate::strategy::Strategy;
    use crate::test_runner::TestRng;

    /// The strategy returned by [`of`].
    pub struct OptionStrategy<S> {
        inner: S,
    }

    impl<S: Strategy> Strategy for OptionStrategy<S> {
        type Value = Option<S::Value>;
        fn generate(&self, rng: &mut TestRng) -> Option<S::Value> {
            // Same bias as real proptest's default: mostly Some.
            if rng.gen_bool(0.75) {
                Some(self.inner.generate(rng))
            } else {
                None
            }
        }
    }

    /// A strategy yielding `None` or `Some` of the inner strategy's values.
    pub fn of<S: Strategy>(inner: S) -> OptionStrategy<S> {
        OptionStrategy { inner }
    }
}

/// Simplified regex-pattern string generation (internal; reached through
/// the `impl Strategy for &str`).
pub mod string {
    use rand::Rng;

    use crate::test_runner::TestRng;

    enum CharClass {
        /// Any printable character (the in-tree `\PC` — "not control").
        AnyPrintable,
        /// Inclusive char ranges (single chars are degenerate ranges).
        Set(Vec<(char, char)>),
    }

    struct Piece {
        class: CharClass,
        min: usize,
        max: usize,
    }

    /// Parses the pattern subset used in-tree: literals, `\PC`, `\d`, `\w`,
    /// `[...]` classes with ranges, and `{m,n}` / `{m}` / `*` / `+` / `?`
    /// repetition suffixes.
    fn compile(pattern: &str) -> Vec<Piece> {
        let chars: Vec<char> = pattern.chars().collect();
        let mut pieces = Vec::new();
        let mut i = 0;
        while i < chars.len() {
            let class = match chars[i] {
                '\\' => {
                    i += 1;
                    match chars.get(i) {
                        Some('P') => {
                            // `\PC`: not-control — any printable char.
                            i += 2;
                            CharClass::AnyPrintable
                        }
                        Some('d') => {
                            i += 1;
                            CharClass::Set(vec![('0', '9')])
                        }
                        Some('w') => {
                            i += 1;
                            CharClass::Set(vec![('a', 'z'), ('A', 'Z'), ('0', '9'), ('_', '_')])
                        }
                        Some(&c) => {
                            i += 1;
                            CharClass::Set(vec![(c, c)])
                        }
                        None => break,
                    }
                }
                '[' => {
                    i += 1;
                    let negated = chars.get(i) == Some(&'^');
                    if negated {
                        i += 1;
                    }
                    let mut ranges = Vec::new();
                    while i < chars.len() && chars[i] != ']' {
                        let lo = chars[i];
                        if chars.get(i + 1) == Some(&'-')
                            && i + 2 < chars.len()
                            && chars[i + 2] != ']'
                        {
                            ranges.push((lo, chars[i + 2]));
                            i += 3;
                        } else {
                            ranges.push((lo, lo));
                            i += 1;
                        }
                    }
                    i += 1; // past ']'
                    if negated {
                        // Good enough for fuzzing: ignore the exclusion and
                        // draw from the full printable pool.
                        CharClass::AnyPrintable
                    } else {
                        CharClass::Set(ranges)
                    }
                }
                '.' => {
                    i += 1;
                    CharClass::AnyPrintable
                }
                c => {
                    i += 1;
                    CharClass::Set(vec![(c, c)])
                }
            };
            // Optional repetition suffix.
            let (min, max) = match chars.get(i) {
                Some('{') => {
                    i += 1;
                    let mut min = 0usize;
                    while let Some(d) = chars.get(i).and_then(|c| c.to_digit(10)) {
                        min = min * 10 + d as usize;
                        i += 1;
                    }
                    let max = if chars.get(i) == Some(&',') {
                        i += 1;
                        let mut max = 0usize;
                        while let Some(d) = chars.get(i).and_then(|c| c.to_digit(10)) {
                            max = max * 10 + d as usize;
                            i += 1;
                        }
                        max
                    } else {
                        min
                    };
                    i += 1; // past '}'
                    (min, max)
                }
                Some('*') => {
                    i += 1;
                    (0, 8)
                }
                Some('+') => {
                    i += 1;
                    (1, 8)
                }
                Some('?') => {
                    i += 1;
                    (0, 1)
                }
                _ => (1, 1),
            };
            pieces.push(Piece { class, min, max });
        }
        pieces
    }

    fn printable(rng: &mut TestRng) -> char {
        // Mostly ASCII, with occasional wider-unicode draws so parser fuzz
        // sees multi-byte input. All pools avoid control characters.
        let c = match rng.gen_range(0..10u32) {
            0..=6 => rng.gen_range(0x20u32..0x7f),
            7 => rng.gen_range(0xa1u32..0x530),
            8 => rng.gen_range(0x4e00u32..0x4f00),
            _ => rng.gen_range(0x1f300u32..0x1f400),
        };
        char::from_u32(c).unwrap_or('x')
    }

    fn from_class(class: &CharClass, rng: &mut TestRng) -> char {
        match class {
            CharClass::AnyPrintable => printable(rng),
            CharClass::Set(ranges) => {
                let total: u32 = ranges
                    .iter()
                    .map(|&(lo, hi)| (hi as u32).saturating_sub(lo as u32) + 1)
                    .sum();
                let mut pick = rng.gen_range(0..total.max(1));
                for &(lo, hi) in ranges {
                    let span = (hi as u32).saturating_sub(lo as u32) + 1;
                    if pick < span {
                        return char::from_u32(lo as u32 + pick).unwrap_or(lo);
                    }
                    pick -= span;
                }
                'x'
            }
        }
    }

    /// Generates one string matching `pattern`.
    pub fn generate(pattern: &str, rng: &mut TestRng) -> String {
        let mut out = String::new();
        for piece in compile(pattern) {
            let count = if piece.max > piece.min {
                rng.gen_range(piece.min..piece.max + 1)
            } else {
                piece.min
            };
            for _ in 0..count {
                out.push(from_class(&piece.class, rng));
            }
        }
        out
    }
}

pub use strategy::arbitrary;

/// Common imports for property tests.
pub mod prelude {
    pub use crate::strategy::arbitrary::{any, Any, Arbitrary};
    pub use crate::strategy::{BoxedStrategy, Just, Map, Strategy, Union};
    pub use crate::test_runner::{ProptestConfig, TestRng};
    pub use crate::{prop_assert, prop_assert_eq, prop_oneof, proptest};
}

/// Defines property tests. Supports an optional leading
/// `#![proptest_config(expr)]` and any number of
/// `fn name(arg in strategy, ...) { body }` items (each already annotated
/// `#[test]` by the caller, as in real proptest).
#[macro_export]
macro_rules! proptest {
    (#![proptest_config($config:expr)] $($rest:tt)*) => {
        $crate::__proptest_impl! { ($config) $($rest)* }
    };
    ($($rest:tt)*) => {
        $crate::__proptest_impl! { ($crate::test_runner::ProptestConfig::default()) $($rest)* }
    };
}

#[doc(hidden)]
#[macro_export]
macro_rules! __proptest_impl {
    (($config:expr)) => {};
    (($config:expr)
        $(#[$meta:meta])*
        fn $name:ident($($arg:pat in $strat:expr),+ $(,)?) $body:block
        $($rest:tt)*
    ) => {
        $(#[$meta])*
        fn $name() {
            let __config: $crate::test_runner::ProptestConfig = $config;
            for __case in 0..__config.cases {
                let mut __rng = $crate::test_runner::TestRng::for_case(
                    concat!(module_path!(), "::", stringify!($name)),
                    __case,
                );
                $(let $arg = $crate::strategy::Strategy::generate(&($strat), &mut __rng);)+
                let __outcome: ::core::result::Result<(), ::std::string::String> =
                    (|| {
                        $body
                        ::core::result::Result::Ok(())
                    })();
                if let ::core::result::Result::Err(__msg) = __outcome {
                    panic!(
                        "proptest case {}/{} failed: {}",
                        __case + 1,
                        __config.cases,
                        __msg
                    );
                }
            }
        }
        $crate::__proptest_impl! { ($config) $($rest)* }
    };
}

/// Uniform choice among strategy alternatives.
#[macro_export]
macro_rules! prop_oneof {
    ($($arm:expr),+ $(,)?) => {
        $crate::strategy::Union::new(::std::vec![
            $($crate::strategy::Strategy::boxed($arm)),+
        ])
    };
}

/// Asserts within a property body; failure fails the current case with the
/// generated inputs reported by the harness.
#[macro_export]
macro_rules! prop_assert {
    ($cond:expr $(,)?) => {
        if !($cond) {
            return ::core::result::Result::Err(
                ::std::format!("assertion failed: {}", stringify!($cond)),
            );
        }
    };
    ($cond:expr, $($fmt:tt)+) => {
        if !($cond) {
            return ::core::result::Result::Err(::std::format!($($fmt)+));
        }
    };
}

/// Equality assertion within a property body.
#[macro_export]
macro_rules! prop_assert_eq {
    ($left:expr, $right:expr $(,)?) => {{
        let (__l, __r) = (&($left), &($right));
        if !(__l == __r) {
            return ::core::result::Result::Err(::std::format!(
                "assertion failed: `left == right`\n  left: `{:?}`\n right: `{:?}`",
                __l, __r
            ));
        }
    }};
    ($left:expr, $right:expr, $($fmt:tt)+) => {{
        let (__l, __r) = (&($left), &($right));
        if !(__l == __r) {
            return ::core::result::Result::Err(::std::format!(
                "assertion failed: `left == right`\n  left: `{:?}`\n right: `{:?}`\n  {}",
                __l, __r, ::std::format!($($fmt)+)
            ));
        }
    }};
}

#[cfg(test)]
mod tests {
    use crate::prelude::*;
    use crate::strategy::Strategy;
    use crate::test_runner::TestRng;

    fn rng() -> TestRng {
        TestRng::for_case("proptest::stub_tests", 0)
    }

    #[test]
    fn ranges_stay_in_bounds() {
        let mut r = rng();
        for _ in 0..200 {
            let v = (3usize..9).generate(&mut r);
            assert!((3..9).contains(&v));
            let f = (-2.0f64..2.0).generate(&mut r);
            assert!((-2.0..2.0).contains(&f));
        }
    }

    #[test]
    fn oneof_covers_all_arms() {
        let s = prop_oneof![Just(1u8), Just(2), Just(3)];
        let mut r = rng();
        let seen: std::collections::HashSet<u8> = (0..100).map(|_| s.generate(&mut r)).collect();
        assert_eq!(seen.len(), 3);
    }

    #[test]
    fn vec_respects_size_range() {
        let s = crate::collection::vec(0u8..10, 2..5);
        let mut r = rng();
        for _ in 0..100 {
            let v = s.generate(&mut r);
            assert!((2..5).contains(&v.len()));
        }
    }

    #[test]
    fn string_pattern_classes_and_counts() {
        let s = "[a-z][a-z0-9-]{0,8}";
        let mut r = rng();
        for _ in 0..200 {
            let v = Strategy::generate(&s, &mut r);
            assert!((1..=9).contains(&v.chars().count()), "{v:?}");
            let mut cs = v.chars();
            let first = cs.next().unwrap();
            assert!(first.is_ascii_lowercase(), "{v:?}");
            assert!(
                cs.all(|c| c.is_ascii_lowercase() || c.is_ascii_digit() || c == '-'),
                "{v:?}"
            );
        }
    }

    #[test]
    fn printable_pattern_has_no_controls() {
        let s = "\\PC{0,60}";
        let mut r = rng();
        for _ in 0..100 {
            let v = Strategy::generate(&s, &mut r);
            assert!(v.chars().count() <= 60);
            assert!(!v.chars().any(|c| c.is_control()), "{v:?}");
        }
    }

    #[test]
    fn recursive_strategies_terminate() {
        #[derive(Debug, Clone, PartialEq)]
        enum Tree {
            Leaf(u8),
            Node(Vec<Tree>),
        }
        fn depth(t: &Tree) -> usize {
            match t {
                Tree::Leaf(_) => 0,
                Tree::Node(c) => 1 + c.iter().map(depth).max().unwrap_or(0),
            }
        }
        let s = (0u8..4)
            .prop_map(Tree::Leaf)
            .prop_recursive(3, 24, 4, |inner| {
                crate::collection::vec(inner, 1..4).prop_map(Tree::Node)
            });
        let mut r = rng();
        let mut max_depth = 0;
        for _ in 0..200 {
            max_depth = max_depth.max(depth(&s.generate(&mut r)));
        }
        assert!(max_depth >= 1, "recursion never fired");
        assert!(max_depth <= 3, "depth bound exceeded: {max_depth}");
    }

    proptest! {
        #![proptest_config(ProptestConfig::with_cases(32))]

        #[test]
        fn macro_binds_multiple_args(a in 0u8..10, b in any::<bool>(), v in crate::collection::vec(0u64..5, 0..4)) {
            prop_assert!(a < 10);
            prop_assert!(v.len() < 4);
            prop_assert_eq!(b, b);
        }
    }
}
